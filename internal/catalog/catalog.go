// Package catalog implements the mediator's global schema: the registry
// of component sources, the global tables presented to users, and the
// GAV (global-as-view) mappings that define each global table as a union
// of fragments drawn from the sources.
//
// A fragment maps one remote table onto the global schema, resolving the
// heterogeneity the paper enumerates: attribute naming (position maps),
// representation conflicts (value maps), unit conflicts (affine
// conversions), missing attributes (constants), and horizontal
// partitioning (per-fragment predicates).
package catalog

import (
	"context"
	"fmt"
	"sync"

	"gis/internal/expr"
	"gis/internal/obs"
	"gis/internal/resilience"
	"gis/internal/source"
	"gis/internal/stats"
	"gis/internal/types"
)

// ColumnMapping defines how one global column is derived from a
// fragment's remote table.
type ColumnMapping struct {
	// RemoteCol is the position in the remote table's schema; -1 when
	// the column does not exist remotely (Const must then be set).
	RemoteCol int
	// Scale/Offset apply an affine unit conversion to numeric columns:
	// global = remote*Scale + Offset. Zero value (Scale 0) means
	// identity; Scale must be non-zero when used.
	Scale  float64
	Offset float64
	// ValueMap translates remote string codes to global ones (e.g.
	// {"M": "male"}). Values absent from the map pass through.
	ValueMap map[string]string
	// Const supplies the column's value when RemoteCol is -1.
	Const *types.Value

	// inverse of ValueMap, built on registration; nil when ValueMap is
	// not bijective (then predicates on this column cannot push down).
	inverse map[string]string
}

// Identity reports whether the mapping is a plain column reference with
// no transformation.
func (m *ColumnMapping) Identity() bool {
	return m.RemoteCol >= 0 && m.Scale == 0 && m.ValueMap == nil && m.Const == nil
}

// hasAffine reports whether an affine conversion applies.
func (m *ColumnMapping) hasAffine() bool { return m.Scale != 0 }

// ToGlobal converts a remote value to the global representation.
func (m *ColumnMapping) ToGlobal(v types.Value) (types.Value, error) {
	if m.Const != nil {
		return *m.Const, nil
	}
	if v.IsNull() {
		return v, nil
	}
	if m.hasAffine() {
		if !v.Kind().Numeric() {
			return types.Null, fmt.Errorf("affine mapping over non-numeric value %s", v.Kind())
		}
		return types.NewFloat(v.AsFloat()*m.Scale + m.Offset), nil
	}
	if m.ValueMap != nil {
		if v.Kind() != types.KindString {
			return types.Null, fmt.Errorf("value map over non-string value %s", v.Kind())
		}
		if g, ok := m.ValueMap[v.Str()]; ok {
			return types.NewString(g), nil
		}
		return v, nil
	}
	return v, nil
}

// ToRemote converts a global constant to the remote representation, for
// predicate pushdown. ok is false when the mapping is not invertible.
func (m *ColumnMapping) ToRemote(v types.Value) (types.Value, bool) {
	if m.Const != nil {
		return types.Null, false
	}
	if v.IsNull() {
		return v, true
	}
	if m.hasAffine() {
		if !v.Kind().Numeric() {
			return types.Null, false
		}
		return types.NewFloat((v.AsFloat() - m.Offset) / m.Scale), true
	}
	if m.ValueMap != nil {
		if m.inverse == nil || v.Kind() != types.KindString {
			return types.Null, false
		}
		if r, ok := m.inverse[v.Str()]; ok {
			return types.NewString(r), true
		}
		// Not a mapped code: passes through unchanged (values outside
		// the map are identical in both representations).
		if _, isRemoteCode := m.ValueMap[v.Str()]; isRemoteCode {
			// The global constant collides with a remote code; pushing
			// it down would match the wrong rows.
			return types.Null, false
		}
		return v, true
	}
	return v, true
}

// Fragment maps one remote table onto a global table.
type Fragment struct {
	// Source is the component system's registered name.
	Source string
	// RemoteTable is the table name at the source.
	RemoteTable string
	// Columns has one mapping per global column.
	Columns []ColumnMapping
	// Where optionally describes which global rows live in this
	// fragment (bound over the global schema). The planner prunes
	// fragments whose predicate contradicts the query filter and
	// re-checks rows at the mediator when sources overlap.
	Where expr.Expr

	// info caches the remote table description.
	info *source.TableInfo
	// stats caches per-fragment optimizer statistics.
	stats *stats.TableStats
}

// Info returns the cached remote table description.
func (f *Fragment) Info() *source.TableInfo { return f.info }

// Stats returns the fragment's statistics (nil until analyzed).
func (f *Fragment) Stats() *stats.TableStats { return f.stats }

// SetStats installs fragment statistics (ANALYZE).
func (f *Fragment) SetStats(ts *stats.TableStats) { f.stats = ts }

// GlobalTable is one table of the global schema.
type GlobalTable struct {
	Name      string
	Schema    *types.Schema
	Fragments []*Fragment
}

// Stats merges the fragments' statistics; nil when none were analyzed.
func (g *GlobalTable) Stats() *stats.TableStats {
	var parts []*stats.TableStats
	for _, f := range g.Fragments {
		if f.stats != nil {
			parts = append(parts, f.stats)
		} else if f.info != nil && f.info.RowCount >= 0 {
			parts = append(parts, stats.Unknown(g.Schema.Len(), f.info.RowCount))
		}
	}
	if len(parts) == 0 {
		return nil
	}
	return stats.Merge(parts...)
}

// Catalog is the mediator's registry of sources and global tables.
// Methods are safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	sources map[string]source.Source
	tables  map[string]*GlobalTable
	views   map[string]string

	// policy, when set, wraps newly added sources with the resilience
	// layer; health tracks per-source breaker state either way, so the
	// planner can always consult it.
	policy *resilience.Policy
	health *resilience.Tracker
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		sources: make(map[string]source.Source),
		tables:  make(map[string]*GlobalTable),
		health:  resilience.NewTracker(nil),
	}
}

// SetResilience installs the per-source call policy: sources registered
// afterwards are wrapped with resilience.WrapSource (breaker-gated,
// retried reads; writes and 2PC forwarded untouched). It must run
// before any source is added so no source escapes the policy.
func (c *Catalog) SetResilience(p *resilience.Policy) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.sources) > 0 {
		return fmt.Errorf("catalog: resilience policy must be set before sources are added")
	}
	c.policy = p
	c.health = resilience.NewTracker(p)
	return nil
}

// Health returns the per-source health tracker (never nil). The planner
// consults it to order fan-out healthy-first; the shell shows it in
// \sources.
func (c *Catalog) Health() *resilience.Tracker {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.health
}

// AddSource registers a component system under its Name(), wrapping it
// with the resilience policy when one is configured.
func (c *Catalog) AddSource(src source.Source) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	name := src.Name()
	if name == "" {
		return fmt.Errorf("catalog: source has empty name")
	}
	if _, dup := c.sources[name]; dup {
		return fmt.Errorf("catalog: source %q already registered", name)
	}
	if c.policy != nil {
		src = resilience.WrapSource(src, c.policy, c.health.For(name))
	}
	c.sources[name] = src
	return nil
}

// Source resolves a registered source.
// Lookup counters expose how often the planner consults the catalog.
var (
	mTableLookups  = obs.Default().Counter("catalog.table_lookups")
	mSourceLookups = obs.Default().Counter("catalog.source_lookups")
	mViewLookups   = obs.Default().Counter("catalog.view_lookups")
)

func (c *Catalog) Source(name string) (source.Source, error) {
	mSourceLookups.Inc()
	c.mu.RLock()
	defer c.mu.RUnlock()
	src, ok := c.sources[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown source %q", name)
	}
	return src, nil
}

// Sources lists registered source names.
func (c *Catalog) Sources() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sources))
	for n := range c.sources {
		out = append(out, n)
	}
	return out
}

// DefineTable creates an empty global table.
func (c *Catalog) DefineTable(name string, schema *types.Schema) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[name]; dup {
		return fmt.Errorf("catalog: global table %q already defined", name)
	}
	if _, dup := c.views[name]; dup {
		return fmt.Errorf("catalog: %q is already a view", name)
	}
	if schema.Len() == 0 {
		return fmt.Errorf("catalog: global table %q needs columns", name)
	}
	sc := schema.Clone()
	for i := range sc.Columns {
		sc.Columns[i].Table = ""
	}
	c.tables[name] = &GlobalTable{Name: name, Schema: sc}
	return nil
}

// Table resolves a global table.
func (c *Catalog) Table(name string) (*GlobalTable, error) {
	mTableLookups.Inc()
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown global table %q", name)
	}
	return t, nil
}

// Tables lists global table names.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// MapFragment validates and attaches a fragment to a global table,
// fetching and caching the remote table description. info is fetched
// from the live source, so the source must be registered first. The
// fetch is a remote round-trip governed by ctx; it runs outside the
// catalog lock so a slow or dead source cannot stall concurrent
// catalog lookups.
func (c *Catalog) MapFragment(ctx context.Context, table string, f *Fragment) error {
	c.mu.RLock()
	t, tableOK := c.tables[table]
	src, sourceOK := c.sources[f.Source]
	c.mu.RUnlock()
	if !tableOK {
		return fmt.Errorf("catalog: unknown global table %q", table)
	}
	if !sourceOK {
		return fmt.Errorf("catalog: fragment references unknown source %q", f.Source)
	}
	info, err := src.TableInfo(ctx, f.RemoteTable)
	if err != nil {
		return fmt.Errorf("catalog: fragment %s.%s: %w", f.Source, f.RemoteTable, err)
	}
	// t.Schema is immutable once DefineTable returns, so validation needs
	// no lock; only the final fragment append mutates shared state.
	if len(f.Columns) != t.Schema.Len() {
		return fmt.Errorf("catalog: fragment %s.%s maps %d columns, global table %q has %d",
			f.Source, f.RemoteTable, len(f.Columns), table, t.Schema.Len())
	}
	for i := range f.Columns {
		m := &f.Columns[i]
		gcol := t.Schema.Columns[i]
		switch {
		case m.Const != nil:
			if m.RemoteCol >= 0 {
				return fmt.Errorf("catalog: column %q maps both a remote column and a constant", gcol.Name)
			}
			if !m.Const.IsNull() && m.Const.Kind() != gcol.Type {
				cv, err := m.Const.Coerce(gcol.Type)
				if err != nil {
					return fmt.Errorf("catalog: column %q constant: %w", gcol.Name, err)
				}
				*m.Const = cv
			}
		case m.RemoteCol < 0 || m.RemoteCol >= info.Schema.Len():
			return fmt.Errorf("catalog: column %q maps remote column %d, table %s.%s has %d",
				gcol.Name, m.RemoteCol, f.Source, f.RemoteTable, info.Schema.Len())
		case m.hasAffine():
			rcol := info.Schema.Columns[m.RemoteCol]
			if !rcol.Type.Numeric() || !gcol.Type.Numeric() {
				return fmt.Errorf("catalog: column %q affine mapping needs numeric types (remote %s, global %s)",
					gcol.Name, rcol.Type, gcol.Type)
			}
		case m.ValueMap != nil:
			rcol := info.Schema.Columns[m.RemoteCol]
			if rcol.Type != types.KindString || gcol.Type != types.KindString {
				return fmt.Errorf("catalog: column %q value map needs string types", gcol.Name)
			}
		}
		// Build the inverse value map when bijective.
		if m.ValueMap != nil {
			inv := make(map[string]string, len(m.ValueMap))
			bijective := true
			for k, v := range m.ValueMap {
				if _, dup := inv[v]; dup {
					bijective = false
					break
				}
				inv[v] = k
			}
			if bijective {
				m.inverse = inv
			}
		}
	}
	if f.Where != nil {
		bound, err := expr.Bind(f.Where, t.Schema)
		if err != nil {
			return fmt.Errorf("catalog: fragment partition predicate: %w", err)
		}
		f.Where = bound
	}
	f.info = info
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Fragments = append(t.Fragments, f)
	return nil
}

// MapSimple is a convenience for the common case: the remote table's
// first N columns map 1:1 onto the global schema.
func (c *Catalog) MapSimple(ctx context.Context, table, sourceName, remoteTable string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	cols := make([]ColumnMapping, t.Schema.Len())
	for i := range cols {
		cols[i] = ColumnMapping{RemoteCol: i}
	}
	return c.MapFragment(ctx, table, &Fragment{Source: sourceName, RemoteTable: remoteTable, Columns: cols})
}

// Invertible reports whether global constants can be translated back to
// the remote representation (required to push join keys down).
func (m *ColumnMapping) Invertible() bool {
	if m.Const != nil || m.RemoteCol < 0 {
		return false
	}
	if m.ValueMap != nil {
		return m.inverse != nil
	}
	return true
}

// DefineView registers a named global view: a SELECT statement expanded
// wherever the view's name appears in a FROM clause. The text is parsed
// and validated lazily by the planner (keeping this package independent
// of the SQL front end); expression subqueries are not allowed inside
// views.
func (c *Catalog) DefineView(name, selectSQL string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[name]; dup {
		return fmt.Errorf("catalog: %q is already a global table", name)
	}
	if _, dup := c.views[name]; dup {
		return fmt.Errorf("catalog: view %q already defined", name)
	}
	if c.views == nil {
		c.views = make(map[string]string)
	}
	c.views[name] = selectSQL
	return nil
}

// View returns the SQL text of a view, if defined.
func (c *Catalog) View(name string) (string, bool) {
	mViewLookups.Inc()
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[name]
	return v, ok
}

// Views lists defined view names.
func (c *Catalog) Views() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.views))
	for n := range c.views {
		out = append(out, n)
	}
	return out
}
