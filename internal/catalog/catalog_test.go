package catalog

import (
	"context"
	"testing"

	"gis/internal/expr"
	"gis/internal/relstore"
	"gis/internal/types"
)

// newHospitalFixture builds a catalog with two sources holding patient
// tables under conflicting schemas, mapped onto one global table.
//
// Global: patients(id INT, gender STRING, weight_kg FLOAT, site STRING)
// hospA.pat: (pid INT, sex STRING codes M/F, kg FLOAT)       + site const "A"
// hospB.people: (weight_lbs FLOAT, person_id INT, gender STRING full words) + site const "B"
func newHospitalFixture(t *testing.T) (*Catalog, *relstore.Store, *relstore.Store) {
	t.Helper()
	hospA := relstore.New("hospA")
	if err := hospA.CreateTable("pat", types.NewSchema(
		types.Column{Name: "pid", Type: types.KindInt},
		types.Column{Name: "sex", Type: types.KindString},
		types.Column{Name: "kg", Type: types.KindFloat},
	), 0); err != nil {
		t.Fatal(err)
	}
	hospB := relstore.New("hospB")
	if err := hospB.CreateTable("people", types.NewSchema(
		types.Column{Name: "weight_lbs", Type: types.KindFloat},
		types.Column{Name: "person_id", Type: types.KindInt},
		types.Column{Name: "gender", Type: types.KindString},
	), 1); err != nil {
		t.Fatal(err)
	}
	c := New()
	if err := c.AddSource(hospA); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSource(hospB); err != nil {
		t.Fatal(err)
	}
	global := types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "gender", Type: types.KindString},
		types.Column{Name: "weight_kg", Type: types.KindFloat},
		types.Column{Name: "site", Type: types.KindString},
	)
	if err := c.DefineTable("patients", global); err != nil {
		t.Fatal(err)
	}
	siteA, siteB := types.NewString("A"), types.NewString("B")
	if err := c.MapFragment(context.Background(), "patients", &Fragment{
		Source: "hospA", RemoteTable: "pat",
		Columns: []ColumnMapping{
			{RemoteCol: 0},
			{RemoteCol: 1, ValueMap: map[string]string{"M": "male", "F": "female"}},
			{RemoteCol: 2},
			{RemoteCol: -1, Const: &siteA},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.MapFragment(context.Background(), "patients", &Fragment{
		Source: "hospB", RemoteTable: "people",
		Columns: []ColumnMapping{
			{RemoteCol: 1},
			{RemoteCol: 2},
			{RemoteCol: 0, Scale: 0.453592}, // lbs → kg
			{RemoteCol: -1, Const: &siteB},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return c, hospA, hospB
}

func TestCatalogRegistration(t *testing.T) {
	c, _, _ := newHospitalFixture(t)
	if len(c.Sources()) != 2 || len(c.Tables()) != 1 {
		t.Errorf("sources=%v tables=%v", c.Sources(), c.Tables())
	}
	tab, err := c.Table("patients")
	if err != nil || len(tab.Fragments) != 2 {
		t.Fatalf("table = %+v, %v", tab, err)
	}
	if _, err := c.Table("ghost"); err == nil {
		t.Error("unknown table must error")
	}
	if _, err := c.Source("ghost"); err == nil {
		t.Error("unknown source must error")
	}
}

func TestCatalogValidation(t *testing.T) {
	c, _, _ := newHospitalFixture(t)
	// Duplicate definitions.
	if err := c.DefineTable("patients", types.NewSchema(types.Column{Name: "x", Type: types.KindInt})); err == nil {
		t.Error("duplicate global table must error")
	}
	st := relstore.New("hospA")
	if err := c.AddSource(st); err == nil {
		t.Error("duplicate source must error")
	}
	// Fragment with wrong column count.
	err := c.MapFragment(context.Background(), "patients", &Fragment{
		Source: "hospA", RemoteTable: "pat",
		Columns: []ColumnMapping{{RemoteCol: 0}},
	})
	if err == nil {
		t.Error("wrong arity fragment must error")
	}
	// Remote column out of range.
	err = c.MapFragment(context.Background(), "patients", &Fragment{
		Source: "hospA", RemoteTable: "pat",
		Columns: []ColumnMapping{{RemoteCol: 0}, {RemoteCol: 9}, {RemoteCol: 2}, {RemoteCol: 0}},
	})
	if err == nil {
		t.Error("out-of-range remote column must error")
	}
	// Unknown remote table.
	err = c.MapFragment(context.Background(), "patients", &Fragment{
		Source: "hospA", RemoteTable: "ghost",
		Columns: make([]ColumnMapping, 4),
	})
	if err == nil {
		t.Error("unknown remote table must error")
	}
	// Affine over strings.
	err = c.MapFragment(context.Background(), "patients", &Fragment{
		Source: "hospA", RemoteTable: "pat",
		Columns: []ColumnMapping{
			{RemoteCol: 0},
			{RemoteCol: 1, Scale: 2},
			{RemoteCol: 2},
			{RemoteCol: 0},
		},
	})
	if err == nil {
		t.Error("affine mapping over string column must error")
	}
}

func TestValueMapTranslation(t *testing.T) {
	c, _, _ := newHospitalFixture(t)
	tab, _ := c.Table("patients")
	fragA := tab.Fragments[0]
	// Remote → global.
	g, err := fragA.Columns[1].ToGlobal(types.NewString("M"))
	if err != nil || g.Str() != "male" {
		t.Errorf("ToGlobal(M) = %v, %v", g, err)
	}
	// Unmapped code passes through.
	g, _ = fragA.Columns[1].ToGlobal(types.NewString("X"))
	if g.Str() != "X" {
		t.Errorf("ToGlobal(X) = %v", g)
	}
	// Global → remote (inverse).
	r, ok := fragA.Columns[1].ToRemote(types.NewString("female"))
	if !ok || r.Str() != "F" {
		t.Errorf("ToRemote(female) = %v, %v", r, ok)
	}
	// A global constant that collides with a remote code must refuse.
	if _, ok := fragA.Columns[1].ToRemote(types.NewString("M")); ok {
		t.Error("colliding constant must not push")
	}
}

func TestAffineTranslation(t *testing.T) {
	c, _, _ := newHospitalFixture(t)
	tab, _ := c.Table("patients")
	fragB := tab.Fragments[1]
	g, err := fragB.Columns[2].ToGlobal(types.NewFloat(220.462))
	if err != nil {
		t.Fatal(err)
	}
	if kg := g.Float(); kg < 99.9 || kg > 100.1 {
		t.Errorf("220 lbs = %v kg", kg)
	}
	r, ok := fragB.Columns[2].ToRemote(types.NewFloat(100))
	if !ok {
		t.Fatal("affine must invert")
	}
	if lbs := r.Float(); lbs < 220 || lbs > 221 {
		t.Errorf("100 kg = %v lbs", lbs)
	}
}

func TestConstMapping(t *testing.T) {
	c, _, _ := newHospitalFixture(t)
	tab, _ := c.Table("patients")
	fragA := tab.Fragments[0]
	g, err := fragA.Columns[3].ToGlobal(types.Null)
	if err != nil || g.Str() != "A" {
		t.Errorf("const mapping = %v, %v", g, err)
	}
	if _, ok := fragA.Columns[3].ToRemote(types.NewString("A")); ok {
		t.Error("const columns must not invert")
	}
}

func TestSplitFilterTranslation(t *testing.T) {
	c, _, _ := newHospitalFixture(t)
	tab, _ := c.Table("patients")
	fragA, fragB := tab.Fragments[0], tab.Fragments[1]
	// gender = 'male' AND weight_kg > 80 AND site = 'A'
	pred, err := expr.Bind(expr.Conjoin([]expr.Expr{
		expr.NewBinary(expr.OpEq, expr.NewColRef("", "gender"), expr.NewConst(types.NewString("male"))),
		expr.NewBinary(expr.OpGt, expr.NewColRef("", "weight_kg"), expr.NewConst(types.NewFloat(80))),
		expr.NewBinary(expr.OpEq, expr.NewColRef("", "site"), expr.NewConst(types.NewString("A"))),
	}), tab.Schema)
	if err != nil {
		t.Fatal(err)
	}
	remote, residual := fragA.SplitFilter(pred)
	// gender → sex = 'M' pushes (value map inverse); weight_kg identity
	// pushes; site is const → residual.
	if remote == nil || residual == nil {
		t.Fatalf("split = %v | %v", remote, residual)
	}
	rcs := expr.Conjuncts(remote)
	if len(rcs) != 2 {
		t.Errorf("remote conjuncts = %v", rcs)
	}
	if got := rcs[0].String(); got != "(sex = 'M')" {
		t.Errorf("value-mapped pushdown = %s", got)
	}
	// Fragment B: weight_kg > 80 → weight_lbs > ~176.4.
	remoteB, _ := fragB.SplitFilter(pred)
	found := false
	for _, rc := range expr.Conjuncts(remoteB) {
		b, ok := rc.(*expr.Binary)
		if !ok {
			continue
		}
		if col, ok := b.L.(*expr.ColRef); ok && col.Name == "weight_lbs" {
			v := b.R.(*expr.Const).Val.Float()
			if v < 176 || v > 177 {
				t.Errorf("lbs bound = %v", v)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("affine predicate did not push: %v", remoteB)
	}
}

func TestNegativeScaleFlipsComparison(t *testing.T) {
	// global = -1 * remote  (e.g. sign-flipped ledger)
	st := relstore.New("flip")
	st.CreateTable("t", types.NewSchema(types.Column{Name: "neg", Type: types.KindFloat}), 0)
	c := New()
	c.AddSource(st)
	c.DefineTable("g", types.NewSchema(types.Column{Name: "v", Type: types.KindFloat}))
	if err := c.MapFragment(context.Background(), "g", &Fragment{
		Source: "flip", RemoteTable: "t",
		Columns: []ColumnMapping{{RemoteCol: 0, Scale: -1}},
	}); err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Table("g")
	pred, _ := expr.Bind(expr.NewBinary(expr.OpGt, expr.NewColRef("", "v"), expr.NewConst(types.NewFloat(5))), tab.Schema)
	remote, residual := tab.Fragments[0].SplitFilter(pred)
	if residual != nil {
		t.Fatal("predicate should push fully")
	}
	b := remote.(*expr.Binary)
	if b.Op != expr.OpLt {
		t.Errorf("negative scale must flip > to <, got %s", b.Op)
	}
	if v := b.R.(*expr.Const).Val.Float(); v != -5 {
		t.Errorf("flipped constant = %v", v)
	}
}

func TestTranslateRow(t *testing.T) {
	c, _, _ := newHospitalFixture(t)
	tab, _ := c.Table("patients")
	fragA := tab.Fragments[0]
	// Requested global columns: id, gender, weight_kg, site.
	globalCols := []int{0, 1, 2, 3}
	remote, backed := fragA.RemoteCols(globalCols)
	if len(remote) != 3 || backed[3] {
		t.Fatalf("remote cols = %v backed = %v", remote, backed)
	}
	row, err := fragA.TranslateRow(tab.Schema, globalCols,
		types.Row{types.NewInt(1), types.NewString("F"), types.NewFloat(61)})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int() != 1 || row[1].Str() != "female" || row[2].Float() != 61 || row[3].Str() != "A" {
		t.Errorf("translated = %v", row)
	}
	// Subset + reorder.
	row, err = fragA.TranslateRow(tab.Schema, []int{3, 1},
		types.Row{types.NewString("M")})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Str() != "A" || row[1].Str() != "male" {
		t.Errorf("subset translated = %v", row)
	}
	// NULL passes through.
	row, err = fragA.TranslateRow(tab.Schema, []int{1}, types.Row{types.Null})
	if err != nil || !row[0].IsNull() {
		t.Errorf("null translate = %v, %v", row, err)
	}
	// Affine coercion to global type.
	fragB := tab.Fragments[1]
	row, err = fragB.TranslateRow(tab.Schema, []int{2}, types.Row{types.NewFloat(100)})
	if err != nil || row[0].Kind() != types.KindFloat {
		t.Errorf("affine row = %v, %v", row, err)
	}
}

func TestPartitionPruning(t *testing.T) {
	st := relstore.New("p")
	st.CreateTable("t", types.NewSchema(types.Column{Name: "id", Type: types.KindInt}), 0)
	c := New()
	c.AddSource(st)
	c.DefineTable("g", types.NewSchema(types.Column{Name: "id", Type: types.KindInt}))
	// Fragment holds id < 100.
	err := c.MapFragment(context.Background(), "g", &Fragment{
		Source: "p", RemoteTable: "t",
		Columns: []ColumnMapping{{RemoteCol: 0}},
		Where:   expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(100))),
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Table("g")
	frag := tab.Fragments[0]
	bind := func(e expr.Expr) expr.Expr {
		b, err := expr.Bind(e, tab.Schema)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// id = 500 contradicts id < 100 → prune.
	if !frag.PruneByPartition(bind(expr.NewBinary(expr.OpEq, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(500))))) {
		t.Error("disjoint equality must prune")
	}
	if !frag.PruneByPartition(bind(expr.NewBinary(expr.OpGe, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(100))))) {
		t.Error("disjoint range must prune")
	}
	if frag.PruneByPartition(bind(expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(50))))) {
		t.Error("overlapping range must not prune")
	}
	if frag.PruneByPartition(bind(expr.NewBinary(expr.OpEq, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(99))))) {
		t.Error("boundary-inside equality must not prune")
	}
	if frag.PruneByPartition(nil) {
		t.Error("nil filter must not prune")
	}
}

func TestMapSimple(t *testing.T) {
	st := relstore.New("s")
	st.CreateTable("t", types.NewSchema(
		types.Column{Name: "a", Type: types.KindInt},
		types.Column{Name: "b", Type: types.KindString},
	), 0)
	c := New()
	c.AddSource(st)
	c.DefineTable("g", types.NewSchema(
		types.Column{Name: "a", Type: types.KindInt},
		types.Column{Name: "b", Type: types.KindString},
	))
	if err := c.MapSimple(context.Background(), "g", "s", "t"); err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Table("g")
	if len(tab.Fragments) != 1 || !tab.Fragments[0].Columns[0].Identity() {
		t.Errorf("simple fragment = %+v", tab.Fragments[0])
	}
}

func TestGlobalTableStats(t *testing.T) {
	c, hospA, _ := newHospitalFixture(t)
	tab, _ := c.Table("patients")
	if tab.Stats() == nil {
		// Both fragments report RowCount 0 → Unknown stats merge.
		t.Log("stats nil before analyze (fragments empty)")
	}
	// Install explicit stats on one fragment.
	ts, err := hospA.Stats("pat")
	if err != nil {
		t.Fatal(err)
	}
	tab.Fragments[0].SetStats(ts)
	if tab.Stats() == nil {
		t.Error("stats must merge when a fragment is analyzed")
	}
}
