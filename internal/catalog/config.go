package catalog

import (
	"context"
	"encoding/json"
	"fmt"

	"gis/internal/expr"
	"gis/internal/types"
)

// Config is the JSON-serializable description of a global schema: the
// tables, their fragment mappings, and (optionally) the wire addresses
// of the component systems. It lets a federation be defined in a file
// and loaded by tools (gisql -config) instead of Go code.
type Config struct {
	// Sources lists component systems to dial (wire protocol). Tools
	// handle dialing; Apply only validates that each referenced source
	// is registered.
	Sources []SourceConfig `json:"sources,omitempty"`
	Tables  []TableConfig  `json:"tables"`
}

// SourceConfig names one remote component system.
type SourceConfig struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// LatencyMS/BandwidthMBps optionally simulate a WAN link.
	LatencyMS     int `json:"latency_ms,omitempty"`
	BandwidthMBps int `json:"bandwidth_mbps,omitempty"`
}

// TableConfig defines one global table.
type TableConfig struct {
	Name      string           `json:"name"`
	Columns   []ColumnConfig   `json:"columns"`
	Fragments []FragmentConfig `json:"fragments"`
}

// ColumnConfig is one global column.
type ColumnConfig struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// FragmentConfig maps one remote table onto the global table.
type FragmentConfig struct {
	Source      string          `json:"source"`
	RemoteTable string          `json:"remote_table"`
	Columns     []MappingConfig `json:"columns"`
	// Where is the partition predicate in SQL syntax over the global
	// columns, e.g. "id < 100".
	Where string `json:"where,omitempty"`
}

// MappingConfig is one column mapping. Exactly one of RemoteCol >= 0 or
// Const must be meaningful.
type MappingConfig struct {
	RemoteCol int               `json:"remote_col"`
	Scale     float64           `json:"scale,omitempty"`
	Offset    float64           `json:"offset,omitempty"`
	ValueMap  map[string]string `json:"value_map,omitempty"`
	// Const supplies a fixed value (rendered as a string, coerced to
	// the column type); used with RemoteCol = -1.
	Const *string `json:"const,omitempty"`
}

// ParseConfig decodes a JSON federation description.
func ParseConfig(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("catalog config: %w", err)
	}
	return &c, nil
}

// MarshalConfig encodes a federation description as indented JSON.
func MarshalConfig(c *Config) ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Apply defines every table of the config on the catalog. Sources named
// by the fragments must already be registered (the caller dials them).
// ctx governs the remote metadata fetches behind each fragment mapping.
// parsePred parses the fragments' SQL partition predicates; pass
// sql.ParseExpr (taken as a parameter to keep this package independent
// of the SQL front end). It may be nil when no fragment uses Where.
func (c *Catalog) Apply(ctx context.Context, cfg *Config, parsePred func(string) (expr.Expr, error)) error {
	for _, tc := range cfg.Tables {
		cols := make([]types.Column, len(tc.Columns))
		for i, cc := range tc.Columns {
			kind, ok := types.KindFromName(cc.Type)
			if !ok {
				return fmt.Errorf("catalog config: table %s column %s: unknown type %q", tc.Name, cc.Name, cc.Type)
			}
			cols[i] = types.Column{Name: cc.Name, Type: kind}
		}
		schema := &types.Schema{Columns: cols}
		if err := c.DefineTable(tc.Name, schema); err != nil {
			return err
		}
		for fi, fc := range tc.Fragments {
			if err := ctx.Err(); err != nil {
				return err
			}
			frag := &Fragment{Source: fc.Source, RemoteTable: fc.RemoteTable}
			for ci, mc := range fc.Columns {
				m := ColumnMapping{
					RemoteCol: mc.RemoteCol,
					Scale:     mc.Scale,
					Offset:    mc.Offset,
					ValueMap:  mc.ValueMap,
				}
				if mc.Const != nil {
					if ci >= len(cols) {
						return fmt.Errorf("catalog config: table %s fragment %d: too many column mappings", tc.Name, fi)
					}
					v, err := types.NewString(*mc.Const).Coerce(cols[ci].Type)
					if err != nil {
						return fmt.Errorf("catalog config: table %s fragment %d const: %w", tc.Name, fi, err)
					}
					m.Const = &v
					m.RemoteCol = -1
				}
				frag.Columns = append(frag.Columns, m)
			}
			if fc.Where != "" {
				if parsePred == nil {
					return fmt.Errorf("catalog config: table %s fragment %d has a Where predicate but no parser was supplied", tc.Name, fi)
				}
				pred, err := parsePred(fc.Where)
				if err != nil {
					return fmt.Errorf("catalog config: table %s fragment %d where: %w", tc.Name, fi, err)
				}
				frag.Where = pred
			}
			if err := c.MapFragment(ctx, tc.Name, frag); err != nil {
				return err
			}
		}
	}
	return nil
}

// Export produces the Config describing the catalog's current tables
// (sources are not exported — their addresses are not known here).
func (c *Catalog) Export() (*Config, error) {
	cfg := &Config{}
	for _, name := range c.Tables() {
		tab, err := c.Table(name)
		if err != nil {
			return nil, err
		}
		tc := TableConfig{Name: name}
		for _, col := range tab.Schema.Columns {
			tc.Columns = append(tc.Columns, ColumnConfig{Name: col.Name, Type: col.Type.String()})
		}
		for _, f := range tab.Fragments {
			fc := FragmentConfig{Source: f.Source, RemoteTable: f.RemoteTable}
			for _, m := range f.Columns {
				mc := MappingConfig{
					RemoteCol: m.RemoteCol,
					Scale:     m.Scale,
					Offset:    m.Offset,
					ValueMap:  m.ValueMap,
				}
				if m.Const != nil {
					s := m.Const.String()
					mc.Const = &s
				}
				fc.Columns = append(fc.Columns, mc)
			}
			if f.Where != nil {
				fc.Where = f.Where.String()
			}
			tc.Fragments = append(tc.Fragments, fc)
		}
		cfg.Tables = append(cfg.Tables, tc)
	}
	return cfg, nil
}
