package relstore

import (
	"context"
	"fmt"

	"gis/internal/expr"
	"gis/internal/source"
	"gis/internal/types"
)

type txState uint8

const (
	txActive txState = iota
	txPrepared
	txCommitted
	txAborted
)

// Tx is a store transaction. Writes are applied immediately under the
// store lock and recorded in an undo log; the lock is held until commit
// or abort (strict two-phase locking at store granularity), which is what
// lets Prepare guarantee a successful Commit.
type Tx struct {
	s      *Store
	state  txState
	locked bool
	undo   []undoRec
}

type undoKind uint8

const (
	undoInsert undoKind = iota
	undoDelete
	undoReplace
)

type undoRec struct {
	kind undoKind
	t    *table
	pos  int
	old  types.Row
}

// BeginTx implements source.Transactional.
func (s *Store) BeginTx(context.Context) (source.Tx, error) {
	return &Tx{s: s}, nil
}

// ensureLocked acquires the store write lock on the first mutation.
func (tx *Tx) ensureLocked() error {
	if tx.state != txActive {
		return fmt.Errorf("relstore %s: transaction is not active", tx.s.name)
	}
	if !tx.locked {
		tx.s.mu.Lock()
		tx.locked = true
	}
	return nil
}

// release drops the store lock if held.
func (tx *Tx) release() {
	if tx.locked {
		tx.locked = false
		tx.s.mu.Unlock()
	}
}

// Insert implements source.Writer within the transaction.
func (tx *Tx) Insert(_ context.Context, tbl string, rows []types.Row) (int64, error) {
	if err := tx.ensureLocked(); err != nil {
		return 0, err
	}
	t, err := tx.s.tableLocked(tbl)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, r := range rows {
		nr, err := normalizeRow(t.schema, r)
		if err != nil {
			return n, fmt.Errorf("relstore %s table %s: %w", tx.s.name, tbl, err)
		}
		if err := t.checkKeyUnique(nr); err != nil {
			return n, fmt.Errorf("relstore %s table %s: %w", tx.s.name, tbl, err)
		}
		pos := t.insertLocked(nr)
		tx.undo = append(tx.undo, undoRec{kind: undoInsert, t: t, pos: pos})
		n++
	}
	return n, nil
}

// Update implements source.Writer within the transaction. filter is
// bound over the table schema; nil matches every row.
func (tx *Tx) Update(_ context.Context, tbl string, filter expr.Expr, set []source.SetClause) (int64, error) {
	if err := tx.ensureLocked(); err != nil {
		return 0, err
	}
	t, err := tx.s.tableLocked(tbl)
	if err != nil {
		return 0, err
	}
	var n int64
	for pos, r := range t.rows {
		if r == nil {
			continue
		}
		if filter != nil {
			ok, err := expr.EvalBool(filter, r)
			if err != nil {
				return n, err
			}
			if !ok {
				continue
			}
		}
		nr := r.Clone()
		for _, sc := range set {
			if sc.Col < 0 || sc.Col >= len(nr) {
				return n, fmt.Errorf("relstore %s: SET column %d out of range", tx.s.name, sc.Col)
			}
			v, err := sc.Value.Eval(r)
			if err != nil {
				return n, err
			}
			cv, err := coerceForColumn(v, t.schema.Columns[sc.Col].Type)
			if err != nil {
				return n, err
			}
			nr[sc.Col] = cv
		}
		old := t.replaceLocked(pos, nr)
		tx.undo = append(tx.undo, undoRec{kind: undoReplace, t: t, pos: pos, old: old})
		n++
	}
	return n, nil
}

// Delete implements source.Writer within the transaction.
func (tx *Tx) Delete(_ context.Context, tbl string, filter expr.Expr) (int64, error) {
	if err := tx.ensureLocked(); err != nil {
		return 0, err
	}
	t, err := tx.s.tableLocked(tbl)
	if err != nil {
		return 0, err
	}
	var n int64
	for pos, r := range t.rows {
		if r == nil {
			continue
		}
		if filter != nil {
			ok, err := expr.EvalBool(filter, r)
			if err != nil {
				return n, err
			}
			if !ok {
				continue
			}
		}
		old := t.deleteLocked(pos)
		tx.undo = append(tx.undo, undoRec{kind: undoDelete, t: t, pos: pos, old: old})
		n++
	}
	return n, nil
}

// Prepare implements source.Tx: it votes on commit. After a successful
// Prepare, Commit cannot fail (the lock is held; the data is applied).
func (tx *Tx) Prepare(context.Context) error {
	if tx.state != txActive {
		return fmt.Errorf("relstore %s: prepare in state %d", tx.s.name, tx.state)
	}
	failPrepare := tx.s.fail.FailPrepare
	if failPrepare {
		return fmt.Errorf("relstore %s: prepare refused (injected failure)", tx.s.name)
	}
	tx.state = txPrepared
	return nil
}

// Commit implements source.Tx. Committing an already-committed
// transaction is a no-op (the coordinator retries after lost acks).
func (tx *Tx) Commit(context.Context) error {
	switch tx.state {
	case txCommitted:
		return nil
	case txAborted:
		return fmt.Errorf("relstore %s: commit after abort", tx.s.name)
	default:
		// Active or prepared: proceed with the commit below.
	}
	failOnce := tx.s.fail.FailCommitOnce
	if failOnce {
		tx.s.fail.FailCommitOnce = false
		// The commit is applied — only the acknowledgement is lost.
		tx.state = txCommitted
		tx.undo = nil
		tx.release()
		return fmt.Errorf("relstore %s: commit ack lost (injected failure)", tx.s.name)
	}
	tx.state = txCommitted
	tx.undo = nil
	tx.release()
	return nil
}

// Abort implements source.Tx: it rolls the undo log back. Abort is
// idempotent; aborting a committed transaction is an error.
func (tx *Tx) Abort(context.Context) error {
	switch tx.state {
	case txAborted:
		return nil
	case txCommitted:
		return fmt.Errorf("relstore %s: abort after commit", tx.s.name)
	default:
		// Active or prepared: roll back below.
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		switch u.kind {
		case undoInsert:
			u.t.deleteLocked(u.pos)
		case undoDelete:
			u.t.rows[u.pos] = u.old
			u.t.live++
			u.t.statsCache = nil
		case undoReplace:
			u.t.replaceLocked(u.pos, u.old)
		}
	}
	tx.undo = nil
	tx.state = txAborted
	tx.release()
	return nil
}

// normalizeRow validates arity and coerces each value to the column type.
func normalizeRow(schema *types.Schema, r types.Row) (types.Row, error) {
	if len(r) != schema.Len() {
		return nil, fmt.Errorf("row has %d values, table has %d columns", len(r), schema.Len())
	}
	out := make(types.Row, len(r))
	for i, v := range r {
		cv, err := coerceForColumn(v, schema.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", schema.Columns[i].Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

func coerceForColumn(v types.Value, k types.Kind) (types.Value, error) {
	if v.IsNull() || v.Kind() == k {
		return v, nil
	}
	return v.Coerce(k)
}

// checkKeyUnique enforces primary-key uniqueness using the key hash
// index when present.
func (t *table) checkKeyUnique(r types.Row) error {
	if len(t.key) == 0 {
		return nil
	}
	probe := t.key[0]
	idx, ok := t.hashIdx[probe]
	if !ok {
		return nil
	}
	for _, pos := range idx[r[probe].Hash(0)] {
		ex := t.rows[pos]
		if ex == nil {
			continue
		}
		same := true
		for _, k := range t.key {
			if !ex[k].Equal(r[k]) {
				same = false
				break
			}
		}
		if same {
			return fmt.Errorf("duplicate key %v", keyOf(r, t.key))
		}
	}
	return nil
}

func keyOf(r types.Row, key []int) types.Row {
	out := make(types.Row, len(key))
	for i, k := range key {
		out[i] = r[k]
	}
	return out
}
