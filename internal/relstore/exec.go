package relstore

import (
	"context"
	"fmt"

	"gis/internal/expr"
	"gis/internal/source"
	"gis/internal/types"
)

// Execute implements source.Source. The store evaluates the full query
// IR locally: index-accelerated filter, projection, grouping/aggregation,
// sort, and limit. Results are materialized under the read lock and
// streamed lock-free afterwards (snapshot semantics per query).
func (s *Store) Execute(ctx context.Context, q *source.Query) (source.RowIter, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.tableLocked(q.Table)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	candidates, scanned := t.candidateRows(q.Filter)

	var out []types.Row
	limitEarly := q.Limit >= 0 && !q.HasAggregation() &&
		len(q.OrderBy) == 0
	for _, pos := range candidates {
		r := t.rows[pos]
		if r == nil {
			continue
		}
		if q.Filter != nil {
			ok, err := expr.EvalBool(q.Filter, r)
			if err != nil {
				return nil, fmt.Errorf("relstore %s: %w", s.name, err)
			}
			if !ok {
				continue
			}
		}
		out = append(out, r)
		if limitEarly && int64(len(out)) >= q.Limit {
			break
		}
	}
	_ = scanned

	if q.HasAggregation() {
		out, err = aggregate(out, q.GroupBy, q.Aggs)
		if err != nil {
			return nil, fmt.Errorf("relstore %s: %w", s.name, err)
		}
	} else if q.Columns != nil {
		proj := make([]types.Row, len(out))
		for i, r := range out {
			nr := make(types.Row, len(q.Columns))
			for j, c := range q.Columns {
				if c < 0 || c >= len(r) {
					return nil, fmt.Errorf("relstore %s: projected column %d out of range", s.name, c)
				}
				nr[j] = r[c]
			}
			proj[i] = nr
		}
		out = proj
	}
	if len(q.OrderBy) > 0 {
		// Sorting mutates; the slice may alias committed rows only at
		// the top level, so copying the slice header set is enough.
		cp := make([]types.Row, len(out))
		copy(cp, out)
		source.SortRows(cp, q.OrderBy)
		out = cp
	}
	if q.Limit >= 0 && int64(len(out)) > q.Limit {
		out = out[:q.Limit]
	}
	return source.SliceIter(out), nil
}

// candidateRows returns row positions to test against the filter, using
// a hash index when the filter contains an equality — or an IN list, as
// shipped by the semijoin strategy — between an indexed column and
// constants. The second result reports whether a full scan was used
// (for tests/metrics).
func (t *table) candidateRows(filter expr.Expr) ([]int, bool) {
	for _, c := range expr.Conjuncts(filter) {
		switch n := c.(type) {
		case *expr.Binary:
			if n.Op != expr.OpEq {
				continue
			}
			col, colOK := n.L.(*expr.ColRef)
			val, valOK := n.R.(*expr.Const)
			if !colOK || !valOK {
				col, colOK = n.R.(*expr.ColRef)
				val, valOK = n.L.(*expr.Const)
			}
			if !colOK || !valOK || col.Index < 0 {
				continue
			}
			idx, indexed := t.hashIdx[col.Index]
			if !indexed {
				continue
			}
			return idx[val.Val.Hash(0)], false
		case *expr.InList:
			if n.Negate {
				continue
			}
			col, colOK := n.E.(*expr.ColRef)
			if !colOK || col.Index < 0 {
				continue
			}
			idx, indexed := t.hashIdx[col.Index]
			if !indexed {
				continue
			}
			// Union the probed buckets, deduplicating positions
			// (duplicate IN constants or hash collisions would
			// otherwise emit rows twice).
			var out []int
			seen := map[int]struct{}{}
			allConst := true
			for _, le := range n.List {
				k, isConst := le.(*expr.Const)
				if !isConst {
					allConst = false
					break
				}
				for _, pos := range idx[k.Val.Hash(0)] {
					if _, dup := seen[pos]; dup {
						continue
					}
					seen[pos] = struct{}{}
					out = append(out, pos)
				}
			}
			if allConst {
				return out, false
			}
		default:
			// Other conjuncts cannot use the hash index.
		}
	}
	all := make([]int, len(t.rows))
	for i := range all {
		all[i] = i
	}
	return all, true
}

// aggregate evaluates grouping and aggregates over materialized rows.
func aggregate(rows []types.Row, groupBy []int, aggs []source.AggSpec) ([]types.Row, error) {
	type group struct {
		key  types.Row
		accs []expr.Accumulator
	}
	groups := make(map[uint64][]*group)
	var order []*group
	for _, r := range rows {
		key := make(types.Row, len(groupBy))
		for i, g := range groupBy {
			key[i] = r[g]
		}
		h := key.Hash()
		var grp *group
		for _, g := range groups[h] {
			if g.key.Equal(key) {
				grp = g
				break
			}
		}
		if grp == nil {
			grp = &group{key: key, accs: make([]expr.Accumulator, len(aggs))}
			for i, a := range aggs {
				grp.accs[i] = expr.NewAccumulator(a.Kind, a.Star, a.Distinct)
			}
			groups[h] = append(groups[h], grp)
			order = append(order, grp)
		}
		for i, a := range aggs {
			v := types.NewInt(1)
			if !a.Star {
				v = r[a.Col]
			}
			if err := grp.accs[i].Add(v); err != nil {
				return nil, err
			}
		}
	}
	if len(order) == 0 && len(groupBy) == 0 {
		row := make(types.Row, len(aggs))
		for i, a := range aggs {
			row[i] = expr.NewAccumulator(a.Kind, a.Star, a.Distinct).Result()
		}
		return []types.Row{row}, nil
	}
	out := make([]types.Row, 0, len(order))
	for _, g := range order {
		row := make(types.Row, 0, len(groupBy)+len(aggs))
		row = append(row, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	return out, nil
}
