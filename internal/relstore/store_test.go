package relstore

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"gis/internal/expr"
	"gis/internal/source"
	"gis/internal/types"
)

var ctx = context.Background()

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := New("db1")
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "cat", Type: types.KindString},
		types.Column{Name: "val", Type: types.KindFloat},
	)
	if err := s.CreateTable("items", schema, 0); err != nil {
		t.Fatal(err)
	}
	var rows []types.Row
	cats := []string{"a", "b", "c"}
	for i := 0; i < 30; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewString(cats[i%3]),
			types.NewFloat(float64(i) * 0.5),
		})
	}
	if _, err := s.Insert(ctx, "items", rows); err != nil {
		t.Fatal(err)
	}
	return s
}

func itemsPred(t *testing.T, s *Store, e expr.Expr) expr.Expr {
	t.Helper()
	info, err := s.TableInfo(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	b, err := expr.Bind(e, info.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runQuery(t *testing.T, s *Store, q *source.Query) []types.Row {
	t.Helper()
	it, err := s.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := source.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestCreateTableErrors(t *testing.T) {
	s := New("x")
	sc := types.NewSchema(types.Column{Name: "a", Type: types.KindInt})
	if err := s.CreateTable("t", sc); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("t", sc); err == nil {
		t.Error("duplicate table must error")
	}
	if err := s.CreateTable("u", sc, 5); err == nil {
		t.Error("bad key column must error")
	}
	if _, err := s.TableInfo(ctx, "ghost"); err == nil {
		t.Error("unknown table must error")
	}
}

func TestScanAndFilter(t *testing.T) {
	s := newTestStore(t)
	rows := runQuery(t, s, source.NewScan("items"))
	if len(rows) != 30 {
		t.Fatalf("scan = %d rows", len(rows))
	}
	q := source.NewScan("items")
	q.Filter = itemsPred(t, s, expr.NewBinary(expr.OpEq,
		expr.NewColRef("", "cat"), expr.NewConst(types.NewString("a"))))
	rows = runQuery(t, s, q)
	if len(rows) != 10 {
		t.Errorf("filtered = %d rows, want 10", len(rows))
	}
}

func TestIndexedPointLookup(t *testing.T) {
	s := newTestStore(t)
	q := source.NewScan("items")
	q.Filter = itemsPred(t, s, expr.NewBinary(expr.OpEq,
		expr.NewColRef("", "id"), expr.NewConst(types.NewInt(7))))
	rows := runQuery(t, s, q)
	if len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Errorf("point lookup = %v", rows)
	}
	// Equality + residual conjunct still narrows through the index.
	q.Filter = itemsPred(t, s, expr.NewBinary(expr.OpAnd,
		expr.NewBinary(expr.OpEq, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(7))),
		expr.NewBinary(expr.OpEq, expr.NewColRef("", "cat"), expr.NewConst(types.NewString("zzz")))))
	if rows := runQuery(t, s, q); len(rows) != 0 {
		t.Errorf("conjunct lookup = %v", rows)
	}
}

func TestProjectionSortLimit(t *testing.T) {
	s := newTestStore(t)
	q := source.NewScan("items")
	q.Columns = []int{2, 0}
	q.OrderBy = []source.OrderSpec{{Col: 1, Desc: true}}
	q.Limit = 3
	rows := runQuery(t, s, q)
	if len(rows) != 3 {
		t.Fatalf("limit = %d rows", len(rows))
	}
	if rows[0][1].Int() != 29 || rows[2][1].Int() != 27 {
		t.Errorf("order/proj = %v", rows)
	}
	if len(rows[0]) != 2 {
		t.Errorf("projection width = %d", len(rows[0]))
	}
}

func TestAggregationPushdown(t *testing.T) {
	s := newTestStore(t)
	q := source.NewScan("items")
	q.GroupBy = []int{1}
	q.Aggs = []source.AggSpec{
		{Kind: expr.AggCount, Star: true},
		{Kind: expr.AggSum, Col: 0},
	}
	q.OrderBy = []source.OrderSpec{{Col: 0}}
	rows := runQuery(t, s, q)
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	// cat "a": ids 0,3,...,27 → count 10, sum 135.
	if rows[0][0].Str() != "a" || rows[0][1].Int() != 10 || rows[0][2].Int() != 135 {
		t.Errorf("group a = %v", rows[0])
	}
	// Global aggregate over empty filter result.
	q2 := source.NewScan("items")
	q2.Filter = itemsPred(t, s, expr.NewBinary(expr.OpGt,
		expr.NewColRef("", "id"), expr.NewConst(types.NewInt(1000))))
	q2.Aggs = []source.AggSpec{{Kind: expr.AggCount, Star: true}}
	rows = runQuery(t, s, q2)
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Errorf("empty global agg = %v", rows)
	}
}

func TestInsertValidation(t *testing.T) {
	s := newTestStore(t)
	// Wrong arity.
	if _, err := s.Insert(ctx, "items", []types.Row{{types.NewInt(1)}}); err == nil {
		t.Error("short row must error")
	}
	// Coercible value is accepted.
	if _, err := s.Insert(ctx, "items", []types.Row{
		{types.NewInt(100), types.NewString("z"), types.NewInt(7)}, // int → float
	}); err != nil {
		t.Errorf("coercible insert: %v", err)
	}
	// Duplicate primary key.
	if _, err := s.Insert(ctx, "items", []types.Row{
		{types.NewInt(100), types.NewString("w"), types.NewFloat(1)},
	}); err == nil {
		t.Error("duplicate key must error")
	}
	// Un-coercible value.
	if _, err := s.Insert(ctx, "items", []types.Row{
		{types.NewString("junk"), types.NewString("w"), types.NewFloat(1)},
	}); err == nil {
		t.Error("uncoercible insert must error")
	}
}

func TestUpdateDelete(t *testing.T) {
	s := newTestStore(t)
	info, _ := s.TableInfo(ctx, "items")
	setVal, err := expr.Bind(
		expr.NewBinary(expr.OpMul, expr.NewColRef("", "val"), expr.NewConst(types.NewFloat(2))),
		info.Schema)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Update(ctx, "items",
		itemsPred(t, s, expr.NewBinary(expr.OpEq, expr.NewColRef("", "cat"), expr.NewConst(types.NewString("a")))),
		[]source.SetClause{{Col: 2, Value: setVal}})
	if err != nil || n != 10 {
		t.Fatalf("update = %d, %v", n, err)
	}
	q := source.NewScan("items")
	q.Filter = itemsPred(t, s, expr.NewBinary(expr.OpEq, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(3))))
	rows := runQuery(t, s, q)
	if rows[0][2].Float() != 3.0 { // was 1.5, doubled
		t.Errorf("updated val = %v", rows[0][2])
	}
	n, err = s.Delete(ctx, "items",
		itemsPred(t, s, expr.NewBinary(expr.OpEq, expr.NewColRef("", "cat"), expr.NewConst(types.NewString("b")))))
	if err != nil || n != 10 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	if rows := runQuery(t, s, source.NewScan("items")); len(rows) != 20 {
		t.Errorf("after delete = %d rows", len(rows))
	}
	info, _ = s.TableInfo(ctx, "items")
	if info.RowCount != 20 {
		t.Errorf("RowCount = %d", info.RowCount)
	}
}

func TestTxCommitAbort(t *testing.T) {
	s := newTestStore(t)
	// Bind predicates up front: the store lock is held for the duration
	// of a writing transaction, so TableInfo would self-deadlock below.
	delPred := itemsPred(t, s, expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(5))))
	tx, err := s.BeginTx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert(ctx, "items", []types.Row{
		{types.NewInt(500), types.NewString("x"), types.NewFloat(1)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Delete(ctx, "items", delPred); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	rows := runQuery(t, s, source.NewScan("items"))
	if len(rows) != 30 {
		t.Errorf("after abort = %d rows, want 30 (rollback)", len(rows))
	}
	// Aborting twice is fine; committing after abort is not.
	if err := tx.Abort(ctx); err != nil {
		t.Error("second abort must be idempotent")
	}
	if err := tx.Commit(ctx); err == nil {
		t.Error("commit after abort must error")
	}

	tx2, _ := s.BeginTx(ctx)
	tx2.Insert(ctx, "items", []types.Row{{types.NewInt(501), types.NewString("x"), types.NewFloat(1)}})
	if err := tx2.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if rows := runQuery(t, s, source.NewScan("items")); len(rows) != 31 {
		t.Errorf("after commit = %d rows", len(rows))
	}
}

func TestTxUpdateRollback(t *testing.T) {
	s := newTestStore(t)
	info, _ := s.TableInfo(ctx, "items")
	one, _ := expr.Bind(expr.NewConst(types.NewFloat(999)), info.Schema)
	tx, _ := s.BeginTx(ctx)
	if _, err := tx.Update(ctx, "items", nil, []source.SetClause{{Col: 2, Value: one}}); err != nil {
		t.Fatal(err)
	}
	tx.Abort(ctx)
	q := source.NewScan("items")
	q.Filter = itemsPred(t, s, expr.NewBinary(expr.OpEq, expr.NewColRef("", "val"), expr.NewConst(types.NewFloat(999))))
	if rows := runQuery(t, s, q); len(rows) != 0 {
		t.Errorf("update not rolled back: %d rows", len(rows))
	}
}

func TestFailureInjection(t *testing.T) {
	s := newTestStore(t)
	s.SetFailPolicy(FailPolicy{FailPrepare: true})
	tx, _ := s.BeginTx(ctx)
	tx.Insert(ctx, "items", []types.Row{{types.NewInt(600), types.NewString("x"), types.NewFloat(1)}})
	if err := tx.Prepare(ctx); err == nil {
		t.Error("injected prepare failure missing")
	}
	tx.Abort(ctx)
	s.SetFailPolicy(FailPolicy{FailCommitOnce: true})
	tx2, _ := s.BeginTx(ctx)
	tx2.Insert(ctx, "items", []types.Row{{types.NewInt(601), types.NewString("x"), types.NewFloat(1)}})
	if err := tx2.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(ctx); err == nil {
		t.Error("injected commit ack loss missing")
	}
	// Retry succeeds (idempotent commit) and the write is applied.
	if err := tx2.Commit(ctx); err != nil {
		t.Errorf("commit retry: %v", err)
	}
	q := source.NewScan("items")
	q.Filter = itemsPred(t, s, expr.NewBinary(expr.OpEq, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(601))))
	if rows := runQuery(t, s, q); len(rows) != 1 {
		t.Error("commit with lost ack must still apply")
	}
}

func TestStatsCollectionAndInvalidation(t *testing.T) {
	s := newTestStore(t)
	st, err := s.Stats("items")
	if err != nil || st.RowCount != 30 {
		t.Fatalf("stats = %v, %v", st, err)
	}
	if st.Columns[1].NDV != 3 {
		t.Errorf("cat NDV = %d", st.Columns[1].NDV)
	}
	s.Delete(ctx, "items", itemsPred(t, s, expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(10)))))
	st, _ = s.Stats("items")
	if st.RowCount != 20 {
		t.Errorf("stats not invalidated: %d", st.RowCount)
	}
}

func TestCreateIndexBackfillAndMaintenance(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreateIndex("items", 1); err != nil {
		t.Fatal(err)
	}
	q := source.NewScan("items")
	q.Filter = itemsPred(t, s, expr.NewBinary(expr.OpEq, expr.NewColRef("", "cat"), expr.NewConst(types.NewString("b"))))
	if rows := runQuery(t, s, q); len(rows) != 10 {
		t.Errorf("indexed cat scan = %d", len(rows))
	}
	// Update moves a row across index buckets.
	info, _ := s.TableInfo(ctx, "items")
	newCat, _ := expr.Bind(expr.NewConst(types.NewString("b")), info.Schema)
	s.Update(ctx, "items",
		itemsPred(t, s, expr.NewBinary(expr.OpEq, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(0)))),
		[]source.SetClause{{Col: 1, Value: newCat}})
	if rows := runQuery(t, s, q); len(rows) != 11 {
		t.Errorf("after cross-bucket update = %d, want 11", len(rows))
	}
	// Idempotent index creation.
	if err := s.CreateIndex("items", 1); err != nil {
		t.Error(err)
	}
	if err := s.CreateIndex("items", 9); err == nil {
		t.Error("bad index column must error")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	s := newTestStore(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g%2 == 0 {
					it, err := s.Execute(ctx, source.NewScan("items"))
					if err != nil {
						errs <- err
						return
					}
					if _, err := source.Drain(it); err != nil {
						errs <- err
						return
					}
				} else {
					id := int64(1000 + g*100 + i)
					if _, err := s.Insert(ctx, "items", []types.Row{
						{types.NewInt(id), types.NewString("p"), types.NewFloat(0)},
					}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	info, _ := s.TableInfo(ctx, "items")
	if info.RowCount != 30+4*20 {
		t.Errorf("final rows = %d", info.RowCount)
	}
}

func TestCapabilities(t *testing.T) {
	s := New("x")
	c := s.Capabilities()
	if c.Filter != source.FilterFull || !c.Aggregate || !c.Txn || !c.Write {
		t.Errorf("caps = %v", c)
	}
}

func TestExecuteUnknownTable(t *testing.T) {
	s := New("x")
	if _, err := s.Execute(ctx, source.NewScan("nope")); err == nil {
		t.Error("unknown table must error")
	}
}

func TestTablesList(t *testing.T) {
	s := newTestStore(t)
	names, err := s.Tables(ctx)
	if err != nil || len(names) != 1 || names[0] != "items" {
		t.Errorf("Tables = %v, %v", names, err)
	}
}

func TestSnapshotIterationDuringWrite(t *testing.T) {
	// Execute materializes under RLock; rows fetched before a write keep
	// their values.
	s := newTestStore(t)
	it, err := s.Execute(ctx, source.NewScan("items"))
	if err != nil {
		t.Fatal(err)
	}
	s.Delete(ctx, "items", nil)
	rows, err := source.Drain(it)
	if err != nil || len(rows) != 30 {
		t.Errorf("snapshot broken: %d rows, %v", len(rows), err)
	}
}

func ExampleStore() {
	s := New("demo")
	s.CreateTable("kv", types.NewSchema(
		types.Column{Name: "k", Type: types.KindInt},
		types.Column{Name: "v", Type: types.KindString},
	), 0)
	s.Insert(context.Background(), "kv", []types.Row{
		{types.NewInt(1), types.NewString("one")},
	})
	it, _ := s.Execute(context.Background(), source.NewScan("kv"))
	rows, _ := source.Drain(it)
	fmt.Println(rows[0])
	// Output: (1, one)
}

func TestInListIndexProbe(t *testing.T) {
	s := newTestStore(t)
	q := source.NewScan("items")
	q.Filter = itemsPred(t, s, &expr.InList{
		E: expr.NewColRef("", "id"),
		List: []expr.Expr{
			expr.NewConst(types.NewInt(3)),
			expr.NewConst(types.NewInt(7)),
			expr.NewConst(types.NewInt(7)),    // duplicate must not dup rows
			expr.NewConst(types.NewInt(9999)), // miss
		},
	})
	rows := runQuery(t, s, q)
	if len(rows) != 2 {
		t.Fatalf("IN probe = %d rows, want 2: %v", len(rows), rows)
	}
	// NOT IN must not use the probe (it would be wrong).
	q.Filter = itemsPred(t, s, &expr.InList{
		E:      expr.NewColRef("", "id"),
		List:   []expr.Expr{expr.NewConst(types.NewInt(3))},
		Negate: true,
	})
	rows = runQuery(t, s, q)
	if len(rows) != 29 {
		t.Fatalf("NOT IN = %d rows, want 29", len(rows))
	}
}
