// Package relstore implements an embedded relational store: the
// strongest component system in the federation. It supports full
// predicate/projection/aggregation/sort/limit pushdown, hash indexes,
// transactional writes with an undo log, and two-phase-commit
// participation, all guarded by a store-level lock (strict two-phase
// locking at store granularity).
package relstore

import (
	"context"
	"fmt"
	"sync"

	"gis/internal/expr"
	"gis/internal/source"
	"gis/internal/stats"
	"gis/internal/types"
)

// Store is an in-memory relational database exposed as a source.Source.
type Store struct {
	name string

	mu     sync.RWMutex
	tables map[string]*table

	// fail injects two-phase-commit failures for recovery tests.
	fail FailPolicy
}

// FailPolicy injects failures into the transaction protocol.
type FailPolicy struct {
	// FailPrepare makes every Prepare vote abort.
	FailPrepare bool
	// FailCommitOnce makes the next Commit return an error once (the
	// commit is still applied — simulating a lost ack, which 2PC must
	// tolerate by retry/idempotence).
	FailCommitOnce bool
}

type table struct {
	schema *types.Schema
	// key columns (for TableInfo and fast point access).
	key []int
	// rows holds the committed data; nil rows are tombstones left by
	// deletes and skipped by scans (compacted opportunistically).
	rows []types.Row
	live int
	// hashIdx maps indexed column → value hash → row positions.
	hashIdx map[int]map[uint64][]int
	// statsCache is invalidated by writes.
	statsCache *stats.TableStats
}

// New returns an empty store named name.
func New(name string) *Store {
	return &Store{name: name, tables: make(map[string]*table)}
}

// SetFailPolicy configures failure injection (tests only).
func (s *Store) SetFailPolicy(p FailPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fail = p
}

// CreateTable registers a table. keyCols lists primary-key column
// positions (indexed automatically).
func (s *Store) CreateTable(name string, schema *types.Schema, keyCols ...int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return fmt.Errorf("relstore %s: table %q already exists", s.name, name)
	}
	for _, k := range keyCols {
		if k < 0 || k >= schema.Len() {
			return fmt.Errorf("relstore %s: key column %d out of range for %q", s.name, k, name)
		}
	}
	t := &table{
		schema:  schema.Clone(),
		key:     append([]int(nil), keyCols...),
		hashIdx: make(map[int]map[uint64][]int),
	}
	for _, k := range keyCols {
		t.hashIdx[k] = make(map[uint64][]int)
	}
	s.tables[name] = t
	return nil
}

// CreateIndex adds a hash index on column col of table name.
func (s *Store) CreateIndex(name string, col int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.tableLocked(name)
	if err != nil {
		return err
	}
	if col < 0 || col >= t.schema.Len() {
		return fmt.Errorf("relstore %s: index column %d out of range", s.name, col)
	}
	if _, dup := t.hashIdx[col]; dup {
		return nil
	}
	idx := make(map[uint64][]int)
	for pos, r := range t.rows {
		if r == nil {
			continue
		}
		h := r[col].Hash(0)
		idx[h] = append(idx[h], pos)
	}
	t.hashIdx[col] = idx
	return nil
}

func (s *Store) tableLocked(name string) (*table, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("relstore %s: unknown table %q", s.name, name)
	}
	return t, nil
}

// Name implements source.Source.
func (s *Store) Name() string { return s.name }

// Tables implements source.Source.
func (s *Store) Tables(context.Context) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	return out, nil
}

// TableInfo implements source.Source.
func (s *Store) TableInfo(_ context.Context, name string) (*source.TableInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.tableLocked(name)
	if err != nil {
		return nil, err
	}
	return &source.TableInfo{
		Schema:     t.schema.Clone(),
		KeyColumns: append([]int(nil), t.key...),
		RowCount:   int64(t.live),
	}, nil
}

// Capabilities implements source.Source: the relational store pushes
// everything down and participates in transactions.
func (s *Store) Capabilities() source.Capabilities {
	return source.Capabilities{
		Filter:    source.FilterFull,
		Project:   true,
		Aggregate: true,
		Sort:      true,
		Limit:     true,
		Write:     true,
		Txn:       true,
	}
}

// Stats computes (and caches) optimizer statistics for a table.
func (s *Store) Stats(name string) (*stats.TableStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.tableLocked(name)
	if err != nil {
		return nil, err
	}
	if t.statsCache == nil {
		live := make([]types.Row, 0, t.live)
		for _, r := range t.rows {
			if r != nil {
				live = append(live, r)
			}
		}
		t.statsCache = stats.Collect(live, t.schema.Len())
	}
	return t.statsCache.Clone(), nil
}

// Insert implements source.Writer (autocommit).
func (s *Store) Insert(ctx context.Context, tbl string, rows []types.Row) (int64, error) {
	tx, err := s.BeginTx(ctx)
	if err != nil {
		return 0, err
	}
	n, err := tx.Insert(ctx, tbl, rows)
	if err != nil {
		_ = tx.Abort(ctx) // best-effort rollback; the original error wins
		return 0, err
	}
	return n, tx.Commit(ctx)
}

// Update implements source.Writer (autocommit).
func (s *Store) Update(ctx context.Context, tbl string, filter expr.Expr, set []source.SetClause) (int64, error) {
	tx, err := s.BeginTx(ctx)
	if err != nil {
		return 0, err
	}
	n, err := tx.Update(ctx, tbl, filter, set)
	if err != nil {
		_ = tx.Abort(ctx) // best-effort rollback; the original error wins
		return 0, err
	}
	return n, tx.Commit(ctx)
}

// Delete implements source.Writer (autocommit).
func (s *Store) Delete(ctx context.Context, tbl string, filter expr.Expr) (int64, error) {
	tx, err := s.BeginTx(ctx)
	if err != nil {
		return 0, err
	}
	n, err := tx.Delete(ctx, tbl, filter)
	if err != nil {
		_ = tx.Abort(ctx) // best-effort rollback; the original error wins
		return 0, err
	}
	return n, tx.Commit(ctx)
}

// insertLocked appends a row and maintains indexes. Caller holds mu.
func (t *table) insertLocked(r types.Row) int {
	pos := len(t.rows)
	t.rows = append(t.rows, r)
	t.live++
	for col, idx := range t.hashIdx {
		h := r[col].Hash(0)
		idx[h] = append(idx[h], pos)
	}
	t.statsCache = nil
	return pos
}

// deleteLocked tombstones row pos. Index entries are left in place (they
// point at a nil row, which probes skip); compaction rebuilds them.
func (t *table) deleteLocked(pos int) types.Row {
	old := t.rows[pos]
	if old == nil {
		return nil
	}
	t.rows[pos] = nil
	t.live--
	t.statsCache = nil
	return old
}

// replaceLocked overwrites row pos with r, keeping indexes consistent.
func (t *table) replaceLocked(pos int, r types.Row) types.Row {
	old := t.rows[pos]
	t.rows[pos] = r
	for col, idx := range t.hashIdx {
		oh := old[col].Hash(0)
		nh := r[col].Hash(0)
		if oh == nh {
			continue
		}
		bucket := idx[oh]
		for i, p := range bucket {
			if p == pos {
				bucket[i] = bucket[len(bucket)-1]
				idx[oh] = bucket[:len(bucket)-1]
				break
			}
		}
		idx[nh] = append(idx[nh], pos)
	}
	t.statsCache = nil
	return old
}
