package expr

import (
	"strings"
)

// Fingerprint renders an expression with every literal normalized to ?
// and IN lists of constants collapsed to a single placeholder, so
// predicates that differ only in constant values — `region = 'EMEA'`
// vs `region = 'APAC'`, or IN lists of different lengths — share a
// fingerprint. The plan-feedback store aggregates estimate-vs-actual
// cardinalities under this key. A nil expression fingerprints as
// "true" (an unfiltered scan).
func Fingerprint(e Expr) string {
	if e == nil {
		return "true"
	}
	var b strings.Builder
	fingerprintExpr(&b, e)
	return b.String()
}

func fingerprintExpr(b *strings.Builder, e Expr) {
	switch n := e.(type) {
	case *Const:
		b.WriteByte('?')
	case *ColRef:
		b.WriteString(n.String())
	case *Binary:
		b.WriteByte('(')
		fingerprintExpr(b, n.L)
		b.WriteByte(' ')
		b.WriteString(n.Op.String())
		b.WriteByte(' ')
		fingerprintExpr(b, n.R)
		b.WriteByte(')')
	case *Unary:
		b.WriteByte('(')
		b.WriteString(n.Op.String())
		fingerprintExpr(b, n.E)
		b.WriteByte(')')
	case *IsNull:
		b.WriteByte('(')
		fingerprintExpr(b, n.E)
		if n.Negate {
			b.WriteString(" IS NOT NULL)")
		} else {
			b.WriteString(" IS NULL)")
		}
	case *InList:
		b.WriteByte('(')
		fingerprintExpr(b, n.E)
		if n.Negate {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		// A list of constants collapses to one placeholder regardless of
		// length; any non-constant elements keep their structure.
		wrote := false
		for _, el := range n.List {
			if _, ok := el.(*Const); ok {
				continue
			}
			if wrote {
				b.WriteString(", ")
			}
			fingerprintExpr(b, el)
			wrote = true
		}
		if !wrote {
			b.WriteByte('?')
		}
		b.WriteString("))")
	case *Case:
		b.WriteString("CASE")
		if n.Operand != nil {
			b.WriteByte(' ')
			fingerprintExpr(b, n.Operand)
		}
		for _, w := range n.Whens {
			b.WriteString(" WHEN ")
			fingerprintExpr(b, w.Cond)
			b.WriteString(" THEN ")
			fingerprintExpr(b, w.Then)
		}
		if n.Else != nil {
			b.WriteString(" ELSE ")
			fingerprintExpr(b, n.Else)
		}
		b.WriteString(" END")
	case *Cast:
		b.WriteString("CAST(")
		fingerprintExpr(b, n.E)
		b.WriteString(" AS ")
		b.WriteString(n.To.String())
		b.WriteByte(')')
	case *Call:
		b.WriteString(n.Name)
		b.WriteByte('(')
		for i, a := range n.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fingerprintExpr(b, a)
		}
		b.WriteByte(')')
	case *AggCall:
		b.WriteString(n.Kind.String())
		b.WriteByte('(')
		if n.Distinct {
			b.WriteString("DISTINCT ")
		}
		if n.Arg == nil {
			b.WriteByte('*')
		} else {
			fingerprintExpr(b, n.Arg)
		}
		b.WriteByte(')')
	case *Subquery:
		// Subqueries are planned away before execution; a structural
		// marker keeps the fingerprint total without rendering literals
		// from the inner statement.
		b.WriteString("(subquery)")
	default:
		// Unknown node: fall back to its String form. This may embed
		// literals, but keeps the fingerprint total over future node
		// types until they get a case here.
		b.WriteString(e.String())
	}
}
