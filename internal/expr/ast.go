// Package expr implements the typed expression engine used by the SQL
// front end, the optimizer, and the execution engine. Expressions are
// built unbound (column references by name) by the parser, bound against
// a schema (references resolved to positions, types inferred) by Bind,
// and then evaluated row-at-a-time with SQL tri-state NULL semantics.
package expr

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"gis/internal/types"
)

// Expr is a node in an expression tree.
//
// ResultType is only meaningful after the expression has been bound; an
// unbound expression reports KindNull. Eval must only be called on bound
// expressions.
type Expr interface {
	// ResultType returns the inferred result kind of a bound expression.
	ResultType() types.Kind
	// Eval evaluates the expression against a row.
	Eval(row types.Row) (types.Value, error)
	// String renders the expression in SQL-ish syntax.
	String() string
	// Children returns the direct sub-expressions.
	Children() []Expr
	// withChildren returns a copy of the node with the children replaced.
	// len(kids) must equal len(Children()).
	withChildren(kids []Expr) Expr
}

// ColRef is a reference to a column. The parser produces unbound refs
// (Index == -1); Bind resolves Index and Type against a schema.
type ColRef struct {
	Table string
	Name  string
	Index int
	Type  types.Kind
}

// NewColRef returns an unbound column reference.
func NewColRef(table, name string) *ColRef {
	return &ColRef{Table: table, Name: name, Index: -1}
}

// NewBoundColRef returns a column reference already resolved to a
// position and type; used by the planner when synthesizing expressions.
func NewBoundColRef(index int, typ types.Kind, name string) *ColRef {
	return &ColRef{Name: name, Index: index, Type: typ}
}

// ResultType implements Expr.
func (c *ColRef) ResultType() types.Kind { return c.Type }

// Eval implements Expr.
func (c *ColRef) Eval(row types.Row) (types.Value, error) {
	if c.Index < 0 || c.Index >= len(row) {
		return types.Null, fmt.Errorf("unbound or out-of-range column reference %s (index %d, row width %d)", c.String(), c.Index, len(row))
	}
	return row[c.Index], nil
}

// String implements Expr.
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	if c.Name != "" {
		return c.Name
	}
	return "$" + strconv.Itoa(c.Index)
}

// Children implements Expr.
func (c *ColRef) Children() []Expr { return nil }

func (c *ColRef) withChildren(kids []Expr) Expr { cp := *c; return &cp }

// Const is a literal value.
type Const struct {
	Val types.Value
}

// NewConst wraps a value as a constant expression.
func NewConst(v types.Value) *Const { return &Const{Val: v} }

// ResultType implements Expr.
func (c *Const) ResultType() types.Kind { return c.Val.Kind() }

// Eval implements Expr.
func (c *Const) Eval(types.Row) (types.Value, error) { return c.Val, nil }

// String implements Expr.
func (c *Const) String() string { return c.Val.SQL() }

// Children implements Expr.
func (c *Const) Children() []Expr { return nil }

func (c *Const) withChildren(kids []Expr) Expr { cp := *c; return &cp }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators, grouped by family.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpLike
	OpConcat
)

// String returns the SQL spelling of the operator.
func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpLike:
		return "LIKE"
	case OpConcat:
		return "||"
	default:
		return "BinOp(" + strconv.Itoa(int(o)) + ")"
	}
}

// Comparison reports whether the operator is a comparison (yields BOOL).
func (o BinOp) Comparison() bool { return o >= OpEq && o <= OpGe }

// Arithmetic reports whether the operator is numeric arithmetic.
func (o BinOp) Arithmetic() bool { return o <= OpMod }

// Logical reports whether the operator is AND/OR.
func (o BinOp) Logical() bool { return o == OpAnd || o == OpOr }

// Commutes returns (flipped operator, true) if a cmp b == b flip(cmp) a.
func (o BinOp) Commutes() (BinOp, bool) {
	switch o {
	case OpEq, OpNe, OpAdd, OpMul, OpAnd, OpOr:
		return o, true
	case OpLt:
		return OpGt, true
	case OpLe:
		return OpGe, true
	case OpGt:
		return OpLt, true
	case OpGe:
		return OpLe, true
	default:
		return o, false
	}
}

// Binary is a binary operation node.
type Binary struct {
	Op   BinOp
	L, R Expr
	typ  types.Kind
}

// NewBinary builds a binary operation.
func NewBinary(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// ResultType implements Expr.
func (b *Binary) ResultType() types.Kind { return b.typ }

// String implements Expr.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Children implements Expr.
func (b *Binary) Children() []Expr { return []Expr{b.L, b.R} }

func (b *Binary) withChildren(kids []Expr) Expr {
	cp := *b
	cp.L, cp.R = kids[0], kids[1]
	return &cp
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	OpNeg UnOp = iota // -x
	OpNot             // NOT x
)

// String returns the SQL spelling of the operator.
func (o UnOp) String() string {
	if o == OpNeg {
		return "-"
	}
	return "NOT "
}

// Unary is a unary operation node.
type Unary struct {
	Op  UnOp
	E   Expr
	typ types.Kind
}

// NewUnary builds a unary operation.
func NewUnary(op UnOp, e Expr) *Unary { return &Unary{Op: op, E: e} }

// ResultType implements Expr.
func (u *Unary) ResultType() types.Kind { return u.typ }

// String implements Expr.
func (u *Unary) String() string { return "(" + u.Op.String() + u.E.String() + ")" }

// Children implements Expr.
func (u *Unary) Children() []Expr { return []Expr{u.E} }

func (u *Unary) withChildren(kids []Expr) Expr {
	cp := *u
	cp.E = kids[0]
	return &cp
}

// IsNull tests x IS [NOT] NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// ResultType implements Expr.
func (n *IsNull) ResultType() types.Kind { return types.KindBool }

// String implements Expr.
func (n *IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}

// Children implements Expr.
func (n *IsNull) Children() []Expr { return []Expr{n.E} }

func (n *IsNull) withChildren(kids []Expr) Expr {
	cp := *n
	cp.E = kids[0]
	return &cp
}

// InList tests x [NOT] IN (e1, e2, ...). When every list element is a
// constant, membership is evaluated against a lazily-built hash set, so
// large shipped key lists (semijoins) probe in O(1) per row.
type InList struct {
	E      Expr
	List   []Expr
	Negate bool

	setOnce    sync.Once
	set        map[uint64][]types.Value
	setHasNull bool
}

// buildSet materializes the constant-list hash set; set stays nil when
// any element is non-constant.
func (n *InList) buildSet() {
	if len(n.List) < 8 {
		return // linear scan is faster for tiny lists
	}
	set := make(map[uint64][]types.Value, len(n.List))
	for _, e := range n.List {
		c, ok := e.(*Const)
		if !ok {
			return
		}
		if c.Val.IsNull() {
			n.setHasNull = true
			continue
		}
		h := c.Val.Hash(0)
		set[h] = append(set[h], c.Val)
	}
	n.set = set
}

// ResultType implements Expr.
func (n *InList) ResultType() types.Kind { return types.KindBool }

// String implements Expr.
func (n *InList) String() string {
	parts := make([]string, len(n.List))
	for i, e := range n.List {
		parts[i] = e.String()
	}
	op := "IN"
	if n.Negate {
		op = "NOT IN"
	}
	return "(" + n.E.String() + " " + op + " (" + strings.Join(parts, ", ") + "))"
}

// Children implements Expr.
func (n *InList) Children() []Expr {
	kids := make([]Expr, 0, len(n.List)+1)
	kids = append(kids, n.E)
	kids = append(kids, n.List...)
	return kids
}

func (n *InList) withChildren(kids []Expr) Expr {
	// Build a fresh node: the cached membership set must not leak to a
	// copy with a different list.
	return &InList{E: kids[0], List: append([]Expr(nil), kids[1:]...), Negate: n.Negate}
}

// When is one WHEN...THEN arm of a CASE expression.
type When struct {
	Cond Expr
	Then Expr
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END. When Operand
// is nil the WHEN conditions are boolean predicates (searched CASE).
type Case struct {
	Operand Expr
	Whens   []When
	Else    Expr
	typ     types.Kind
}

// ResultType implements Expr.
func (c *Case) ResultType() types.Kind { return c.typ }

// String implements Expr.
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	if c.Operand != nil {
		fmt.Fprintf(&b, " %s", c.Operand)
	}
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// Children implements Expr.
func (c *Case) Children() []Expr {
	var kids []Expr
	if c.Operand != nil {
		kids = append(kids, c.Operand)
	}
	for _, w := range c.Whens {
		kids = append(kids, w.Cond, w.Then)
	}
	if c.Else != nil {
		kids = append(kids, c.Else)
	}
	return kids
}

func (c *Case) withChildren(kids []Expr) Expr {
	cp := *c
	i := 0
	if cp.Operand != nil {
		cp.Operand = kids[i]
		i++
	}
	cp.Whens = make([]When, len(c.Whens))
	for j := range c.Whens {
		cp.Whens[j] = When{Cond: kids[i], Then: kids[i+1]}
		i += 2
	}
	if cp.Else != nil {
		cp.Else = kids[i]
	}
	return &cp
}

// Cast is CAST(e AS type).
type Cast struct {
	E  Expr
	To types.Kind
}

// ResultType implements Expr.
func (c *Cast) ResultType() types.Kind { return c.To }

// String implements Expr.
func (c *Cast) String() string { return "CAST(" + c.E.String() + " AS " + c.To.String() + ")" }

// Children implements Expr.
func (c *Cast) Children() []Expr { return []Expr{c.E} }

func (c *Cast) withChildren(kids []Expr) Expr {
	cp := *c
	cp.E = kids[0]
	return &cp
}

// Call is a scalar function call. fn is resolved during Bind.
type Call struct {
	Name string
	Args []Expr
	fn   *builtin
	typ  types.Kind
}

// NewCall builds an unbound scalar function call.
func NewCall(name string, args ...Expr) *Call {
	return &Call{Name: strings.ToUpper(name), Args: args}
}

// ResultType implements Expr.
func (c *Call) ResultType() types.Kind { return c.typ }

// String implements Expr.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Children implements Expr.
func (c *Call) Children() []Expr { return c.Args }

func (c *Call) withChildren(kids []Expr) Expr {
	cp := *c
	cp.Args = append([]Expr(nil), kids...)
	return &cp
}

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate functions.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return "AggKind(" + strconv.Itoa(int(a)) + ")"
	}
}

// AggKindFromName resolves a function name to an aggregate kind.
func AggKindFromName(name string) (AggKind, bool) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	case "AVG":
		return AggAvg, true
	default:
		return 0, false
	}
}

// AggCall is an aggregate function call appearing in a SELECT or HAVING
// expression. It cannot be evaluated row-at-a-time; the planner extracts
// AggCalls into an aggregation operator and replaces them with column
// references over the aggregate's output.
type AggCall struct {
	Kind     AggKind
	Arg      Expr // nil for COUNT(*)
	Distinct bool
	typ      types.Kind
}

// ResultType implements Expr.
func (a *AggCall) ResultType() types.Kind { return a.typ }

// Eval implements Expr; aggregate calls are not row-evaluable.
func (a *AggCall) Eval(types.Row) (types.Value, error) {
	return types.Null, fmt.Errorf("aggregate %s evaluated outside an aggregation context", a)
}

// String implements Expr.
func (a *AggCall) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	return a.Kind.String() + "(" + arg + ")"
}

// Children implements Expr.
func (a *AggCall) Children() []Expr {
	if a.Arg == nil {
		return nil
	}
	return []Expr{a.Arg}
}

func (a *AggCall) withChildren(kids []Expr) Expr {
	cp := *a
	if len(kids) > 0 {
		cp.Arg = kids[0]
	}
	return &cp
}
