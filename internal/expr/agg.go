package expr

import (
	"fmt"
	"strconv"

	"gis/internal/types"
)

// Accumulator is the running state of one aggregate function over one
// group. Accumulators are created per group by NewAccumulator and fed
// with Add; Result finalizes the value.
type Accumulator interface {
	// Add folds one input value into the accumulator. For COUNT(*) the
	// value is ignored (but still counted).
	Add(v types.Value) error
	// Result returns the aggregate value for the group.
	Result() types.Value
	// Merge folds another accumulator of the same aggregate into this
	// one (used for partial aggregation / combining per-source results).
	Merge(other Accumulator) error
}

// NewAccumulator creates an accumulator for the given aggregate call.
// star indicates COUNT(*) (count every row including NULLs).
func NewAccumulator(kind AggKind, star, distinct bool) Accumulator {
	var inner Accumulator
	switch kind {
	case AggCount:
		inner = &countAcc{star: star}
	case AggSum:
		inner = &sumAcc{}
	case AggAvg:
		inner = &avgAcc{}
	case AggMin:
		inner = &minmaxAcc{min: true}
	case AggMax:
		inner = &minmaxAcc{min: false}
	default:
		panic("unknown aggregate kind " + strconv.Itoa(int(kind)))
	}
	if distinct {
		return &distinctAcc{seen: make(map[uint64][]types.Value), inner: inner}
	}
	return inner
}

type countAcc struct {
	star bool
	n    int64
}

func (a *countAcc) Add(v types.Value) error {
	if a.star || !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *countAcc) Result() types.Value { return types.NewInt(a.n) }

func (a *countAcc) Merge(o Accumulator) error {
	oa, ok := o.(*countAcc)
	if !ok {
		return fmt.Errorf("cannot merge %T into COUNT", o)
	}
	a.n += oa.n
	return nil
}

type sumAcc struct {
	sawAny   bool
	isFloat  bool
	intSum   int64
	floatSum float64
}

func (a *sumAcc) Add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if !v.Kind().Numeric() {
		return fmt.Errorf("SUM over non-numeric value %s", v.Kind())
	}
	a.sawAny = true
	if v.Kind() == types.KindFloat && !a.isFloat {
		a.isFloat = true
		a.floatSum = float64(a.intSum)
	}
	if a.isFloat {
		a.floatSum += v.AsFloat()
	} else {
		a.intSum += v.Int()
	}
	return nil
}

func (a *sumAcc) Result() types.Value {
	if !a.sawAny {
		return types.Null
	}
	if a.isFloat {
		return types.NewFloat(a.floatSum)
	}
	return types.NewInt(a.intSum)
}

func (a *sumAcc) Merge(o Accumulator) error {
	oa, ok := o.(*sumAcc)
	if !ok {
		return fmt.Errorf("cannot merge %T into SUM", o)
	}
	if !oa.sawAny {
		return nil
	}
	return a.Add(oa.Result())
}

type avgAcc struct {
	n   int64
	sum float64
}

func (a *avgAcc) Add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if !v.Kind().Numeric() {
		return fmt.Errorf("AVG over non-numeric value %s", v.Kind())
	}
	a.n++
	a.sum += v.AsFloat()
	return nil
}

func (a *avgAcc) Result() types.Value {
	if a.n == 0 {
		return types.Null
	}
	return types.NewFloat(a.sum / float64(a.n))
}

func (a *avgAcc) Merge(o Accumulator) error {
	oa, ok := o.(*avgAcc)
	if !ok {
		return fmt.Errorf("cannot merge %T into AVG", o)
	}
	a.n += oa.n
	a.sum += oa.sum
	return nil
}

type minmaxAcc struct {
	min bool
	val types.Value // Null until the first non-null input
}

func (a *minmaxAcc) Add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if a.val.IsNull() {
		a.val = v
		return nil
	}
	c := v.Compare(a.val)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.val = v
	}
	return nil
}

func (a *minmaxAcc) Result() types.Value { return a.val }

func (a *minmaxAcc) Merge(o Accumulator) error {
	oa, ok := o.(*minmaxAcc)
	if !ok {
		return fmt.Errorf("cannot merge %T into MIN/MAX", o)
	}
	return a.Add(oa.val)
}

// distinctAcc deduplicates inputs before forwarding to the inner
// accumulator. Hash collisions are resolved by exact comparison.
type distinctAcc struct {
	seen  map[uint64][]types.Value
	inner Accumulator
}

func (a *distinctAcc) Add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	h := v.Hash(0)
	for _, prev := range a.seen[h] {
		if prev.Equal(v) {
			return nil
		}
	}
	a.seen[h] = append(a.seen[h], v)
	return a.inner.Add(v)
}

func (a *distinctAcc) Result() types.Value { return a.inner.Result() }

func (a *distinctAcc) Merge(o Accumulator) error {
	oa, ok := o.(*distinctAcc)
	if !ok {
		return fmt.Errorf("cannot merge %T into DISTINCT aggregate", o)
	}
	for _, vals := range oa.seen {
		for _, v := range vals {
			if err := a.Add(v); err != nil {
				return err
			}
		}
	}
	return nil
}
