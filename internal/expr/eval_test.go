package expr

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gis/internal/types"
)

var testSchema = types.NewSchema(
	types.Column{Table: "t", Name: "a", Type: types.KindInt},
	types.Column{Table: "t", Name: "b", Type: types.KindFloat},
	types.Column{Table: "t", Name: "s", Type: types.KindString},
	types.Column{Table: "t", Name: "flag", Type: types.KindBool},
	types.Column{Table: "t", Name: "ts", Type: types.KindTime},
	types.Column{Table: "t", Name: "n", Type: types.KindInt, Nullable: true},
)

var testRow = types.Row{
	types.NewInt(10),
	types.NewFloat(2.5),
	types.NewString("hello"),
	types.NewBool(true),
	types.NewTime(time.Date(2021, 3, 14, 0, 0, 0, 0, time.UTC)),
	types.Null,
}

// mustBind binds and fails the test on error.
func mustBind(t *testing.T, e Expr) Expr {
	t.Helper()
	b, err := Bind(e, testSchema)
	if err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	return b
}

// evalStr evaluates a bound expression on testRow and returns the display
// string of the result.
func evalStr(t *testing.T, e Expr) string {
	t.Helper()
	v, err := e.Eval(testRow)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v.String()
}

func col(name string) *ColRef         { return NewColRef("", name) }
func intc(i int64) *Const             { return NewConst(types.NewInt(i)) }
func floatc(f float64) *Const         { return NewConst(types.NewFloat(f)) }
func strc(s string) *Const            { return NewConst(types.NewString(s)) }
func boolc(b bool) *Const             { return NewConst(types.NewBool(b)) }
func bin(op BinOp, l, r Expr) *Binary { return NewBinary(op, l, r) }

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{bin(OpAdd, col("a"), intc(5)), "15"},
		{bin(OpSub, col("a"), intc(3)), "7"},
		{bin(OpMul, col("a"), col("b")), "25"},
		{bin(OpDiv, col("a"), intc(3)), "3"},     // integer division
		{bin(OpDiv, col("a"), floatc(4)), "2.5"}, // float promotion
		{bin(OpMod, col("a"), intc(3)), "1"},
		{NewUnary(OpNeg, col("a")), "-10"},
		{bin(OpAdd, col("n"), intc(1)), "NULL"}, // NULL propagates
	}
	for _, c := range cases {
		if got := evalStr(t, mustBind(t, c.e)); got != c.want {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	e := mustBind(t, bin(OpDiv, col("a"), intc(0)))
	if _, err := e.Eval(testRow); err == nil {
		t.Error("integer division by zero must error")
	}
	e = mustBind(t, bin(OpMod, col("b"), floatc(0)))
	if _, err := e.Eval(testRow); err == nil {
		t.Error("float modulo by zero must error")
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{bin(OpEq, col("a"), intc(10)), "true"},
		{bin(OpNe, col("a"), intc(10)), "false"},
		{bin(OpLt, col("b"), intc(3)), "true"},
		{bin(OpGe, col("a"), floatc(10.0)), "true"},
		{bin(OpGt, col("s"), strc("abc")), "true"},
		{bin(OpEq, col("n"), intc(1)), "NULL"},
		{bin(OpEq, col("n"), NewConst(types.Null)), "NULL"}, // NULL = NULL is NULL
	}
	for _, c := range cases {
		if got := evalStr(t, mustBind(t, c.e)); got != c.want {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := bin(OpEq, col("n"), intc(1)) // evaluates to NULL
	cases := []struct {
		e    Expr
		want string
	}{
		{bin(OpAnd, boolc(true), boolc(false)), "false"},
		{bin(OpAnd, null, boolc(false)), "false"},
		{bin(OpAnd, boolc(false), null), "false"},
		{bin(OpAnd, null, boolc(true)), "NULL"},
		{bin(OpOr, null, boolc(true)), "true"},
		{bin(OpOr, boolc(true), null), "true"},
		{bin(OpOr, null, boolc(false)), "NULL"},
		{bin(OpOr, null, null), "NULL"},
		{NewUnary(OpNot, boolc(false)), "true"},
		{NewUnary(OpNot, null), "NULL"},
	}
	for _, c := range cases {
		if got := evalStr(t, mustBind(t, c.e)); got != c.want {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%c", true},
		{"abcdef", "a%c%f", true},
		{"abcdef", "a%x%f", false},
	}
	for _, c := range cases {
		e := mustBind(t, bin(OpLike, strc(c.s), strc(c.p)))
		v, err := e.Eval(nil)
		if err != nil {
			t.Fatalf("LIKE: %v", err)
		}
		if v.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.p, v.Bool(), c.want)
		}
	}
}

func TestConcatOperator(t *testing.T) {
	e := mustBind(t, bin(OpConcat, col("s"), strc("!")))
	if got := evalStr(t, e); got != "hello!" {
		t.Errorf("|| = %q", got)
	}
	// NULL || x is NULL (operator, unlike CONCAT function).
	e = mustBind(t, bin(OpConcat, col("n"), strc("!")))
	if got := evalStr(t, e); got != "NULL" {
		t.Errorf("NULL || x = %q, want NULL", got)
	}
}

func TestIsNull(t *testing.T) {
	e := mustBind(t, &IsNull{E: col("n")})
	if got := evalStr(t, e); got != "true" {
		t.Errorf("n IS NULL = %s", got)
	}
	e = mustBind(t, &IsNull{E: col("a"), Negate: true})
	if got := evalStr(t, e); got != "true" {
		t.Errorf("a IS NOT NULL = %s", got)
	}
}

func TestInList(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&InList{E: col("a"), List: []Expr{intc(1), intc(10)}}, "true"},
		{&InList{E: col("a"), List: []Expr{intc(1), intc(2)}}, "false"},
		{&InList{E: col("a"), List: []Expr{intc(1), NewConst(types.Null)}}, "NULL"},
		{&InList{E: col("a"), List: []Expr{intc(10), NewConst(types.Null)}}, "true"},
		{&InList{E: col("n"), List: []Expr{intc(1)}}, "NULL"},
		{&InList{E: col("a"), List: []Expr{intc(1)}, Negate: true}, "true"},
		{&InList{E: col("a"), List: []Expr{intc(10)}, Negate: true}, "false"},
	}
	for _, c := range cases {
		if got := evalStr(t, mustBind(t, c.e)); got != c.want {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestCase(t *testing.T) {
	// Searched CASE.
	e := mustBind(t, &Case{
		Whens: []When{
			{Cond: bin(OpGt, col("a"), intc(100)), Then: strc("big")},
			{Cond: bin(OpGt, col("a"), intc(5)), Then: strc("mid")},
		},
		Else: strc("small"),
	})
	if got := evalStr(t, e); got != "mid" {
		t.Errorf("searched CASE = %s", got)
	}
	// Operand CASE.
	e = mustBind(t, &Case{
		Operand: col("a"),
		Whens:   []When{{Cond: intc(10), Then: strc("ten")}},
	})
	if got := evalStr(t, e); got != "ten" {
		t.Errorf("operand CASE = %s", got)
	}
	// No match, no ELSE → NULL.
	e = mustBind(t, &Case{
		Operand: col("a"),
		Whens:   []When{{Cond: intc(11), Then: strc("x")}},
	})
	if got := evalStr(t, e); got != "NULL" {
		t.Errorf("CASE fallthrough = %s", got)
	}
	// Mixed int/float branches unify to FLOAT.
	e = mustBind(t, &Case{
		Whens: []When{{Cond: boolc(true), Then: intc(1)}},
		Else:  floatc(2.5),
	})
	if e.ResultType() != types.KindFloat {
		t.Errorf("CASE type = %s, want FLOAT", e.ResultType())
	}
	if got := evalStr(t, e); got != "1" {
		t.Errorf("CASE coerced = %s", got)
	}
}

func TestCast(t *testing.T) {
	e := mustBind(t, &Cast{E: col("a"), To: types.KindString})
	if got := evalStr(t, e); got != "10" {
		t.Errorf("CAST = %s", got)
	}
	e = mustBind(t, &Cast{E: strc("2.5"), To: types.KindFloat})
	if got := evalStr(t, e); got != "2.5" {
		t.Errorf("CAST = %s", got)
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{NewCall("abs", NewUnary(OpNeg, col("a"))), "10"},
		{NewCall("ABS", floatc(-2.5)), "2.5"},
		{NewCall("CEIL", floatc(1.2)), "2"},
		{NewCall("FLOOR", floatc(1.8)), "1"},
		{NewCall("ROUND", floatc(1.25), intc(1)), "1.3"},
		{NewCall("SQRT", intc(16)), "4"},
		{NewCall("POW", intc(2), intc(10)), "1024"},
		{NewCall("LOWER", strc("HeLLo")), "hello"},
		{NewCall("UPPER", col("s")), "HELLO"},
		{NewCall("LENGTH", col("s")), "5"},
		{NewCall("TRIM", strc("  x ")), "x"},
		{NewCall("SUBSTR", col("s"), intc(2), intc(3)), "ell"},
		{NewCall("SUBSTR", col("s"), intc(3)), "llo"},
		{NewCall("REPLACE", col("s"), strc("l"), strc("L")), "heLLo"},
		{NewCall("CONCAT", col("s"), col("n"), strc("!")), "hello!"},
		{NewCall("COALESCE", col("n"), intc(7)), "7"},
		{NewCall("COALESCE", col("a"), intc(7)), "10"},
		{NewCall("NULLIF", col("a"), intc(10)), "NULL"},
		{NewCall("NULLIF", col("a"), intc(11)), "10"},
		{NewCall("YEAR", col("ts")), "2021"},
		{NewCall("MONTH", col("ts")), "3"},
		{NewCall("DAY", col("ts")), "14"},
		{NewCall("LOWER", col("n")), "NULL"}, // null propagation
	}
	for _, c := range cases {
		if got := evalStr(t, mustBind(t, c.e)); got != c.want {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestBindErrors(t *testing.T) {
	bad := []Expr{
		col("nope"),
		NewCall("NOSUCHFN", intc(1)),
		NewCall("ABS"),                   // too few args
		NewCall("ABS", intc(1), intc(2)), // too many args
		NewCall("ABS", strc("x")),        // non-numeric
		bin(OpAdd, col("s"), intc(1)),    // string + int
		bin(OpEq, col("s"), intc(1)),     // string = int
		bin(OpLike, col("a"), strc("%")), // LIKE over int
		NewUnary(OpNeg, col("s")),        // negate string
	}
	for _, e := range bad {
		if _, err := Bind(e, testSchema); err == nil {
			t.Errorf("Bind(%s) should fail", e)
		}
	}
}

func TestBindQualified(t *testing.T) {
	e, err := Bind(NewColRef("t", "a"), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if e.(*ColRef).Index != 0 || e.ResultType() != types.KindInt {
		t.Errorf("bound ref = %+v", e)
	}
	if _, err := Bind(NewColRef("u", "a"), testSchema); err == nil {
		t.Error("wrong qualifier must fail")
	}
}

func TestEvalBool(t *testing.T) {
	e := mustBind(t, bin(OpGt, col("a"), intc(5)))
	ok, err := EvalBool(e, testRow)
	if err != nil || !ok {
		t.Errorf("EvalBool = %v,%v", ok, err)
	}
	// NULL predicate rejects.
	e = mustBind(t, bin(OpGt, col("n"), intc(5)))
	ok, err = EvalBool(e, testRow)
	if err != nil || ok {
		t.Errorf("EvalBool(NULL) = %v,%v; want false,nil", ok, err)
	}
}

func TestLikePrefixToRange(t *testing.T) {
	lo, hi, ok := LikePrefixToRange("abc%")
	if !ok || lo != "abc" || hi != "abd" {
		t.Errorf("range = %q..%q,%v", lo, hi, ok)
	}
	if _, _, ok := LikePrefixToRange("%abc"); ok {
		t.Error("no prefix pattern must not produce a range")
	}
	if _, _, ok := LikePrefixToRange("abc"); !ok {
		// 'abc' has prefix abc (degenerate but valid: no wildcards means
		// IndexAny returns -1, so not ok).
		_ = ok
	}
}

// Property: likeMatch with pattern == s always matches when s has no
// metacharacters.
func TestLikeSelfMatchProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, s) && likeMatch(s, "%") && likeMatch(s, s+"%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer addition via the expression engine agrees with Go.
func TestAddProperty(t *testing.T) {
	f := func(a, b int32) bool {
		e, err := Bind(bin(OpAdd, intc(int64(a)), intc(int64(b))), testSchema)
		if err != nil {
			return false
		}
		v, err := e.Eval(nil)
		return err == nil && v.Int() == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
