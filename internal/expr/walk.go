package expr

import (
	"gis/internal/types"
)

// Walk calls fn for every node in the tree in pre-order. If fn returns
// false the node's children are not visited.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil {
		return
	}
	if !fn(e) {
		return
	}
	for _, c := range e.Children() {
		Walk(c, fn)
	}
}

// Transform rebuilds the tree bottom-up, replacing every node with
// fn(node-with-transformed-children). fn must not return nil.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	kids := e.Children()
	if len(kids) > 0 {
		newKids := make([]Expr, len(kids))
		changed := false
		for i, k := range kids {
			newKids[i] = Transform(k, fn)
			if newKids[i] != k {
				changed = true
			}
		}
		if changed {
			e = e.withChildren(newKids)
		}
	}
	return fn(e)
}

// Columns returns every column reference in the tree, in visit order.
func Columns(e Expr) []*ColRef {
	var out []*ColRef
	Walk(e, func(n Expr) bool {
		if c, ok := n.(*ColRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// ColumnSet returns the set of bound column indexes referenced by e.
func ColumnSet(e Expr) map[int]struct{} {
	set := make(map[int]struct{})
	for _, c := range Columns(e) {
		if c.Index >= 0 {
			set[c.Index] = struct{}{}
		}
	}
	return set
}

// HasAggregate reports whether the tree contains an AggCall.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if _, ok := n.(*AggCall); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// Conjuncts splits a predicate on top-level ANDs: (a AND (b AND c))
// yields [a, b, c]. A nil predicate yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// Conjoin combines predicates with AND. An empty list yields nil.
func Conjoin(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
			continue
		}
		out = &Binary{Op: OpAnd, L: out, R: p, typ: types.KindBool}
	}
	return out
}

// Remap rewrites bound column indexes through mapping (old index → new
// index). References absent from the mapping are left unchanged.
func Remap(e Expr, mapping map[int]int) Expr {
	return Transform(e, func(n Expr) Expr {
		c, ok := n.(*ColRef)
		if !ok || c.Index < 0 {
			return n
		}
		ni, ok := mapping[c.Index]
		if !ok {
			return n
		}
		cp := *c
		cp.Index = ni
		return &cp
	})
}

// Shift adds delta to every bound column index (used when an expression
// over the right side of a join is evaluated against the concatenated
// row).
func Shift(e Expr, delta int) Expr {
	if delta == 0 {
		return e
	}
	return Transform(e, func(n Expr) Expr {
		c, ok := n.(*ColRef)
		if !ok || c.Index < 0 {
			return n
		}
		cp := *c
		cp.Index += delta
		return &cp
	})
}

// MaxColumnIndex returns the largest bound column index in e, or -1.
func MaxColumnIndex(e Expr) int {
	max := -1
	for _, c := range Columns(e) {
		if c.Index > max {
			max = c.Index
		}
	}
	return max
}

// IsConst reports whether the tree references no columns and contains no
// aggregates (so it can be folded to a literal).
func IsConst(e Expr) bool {
	constant := true
	Walk(e, func(n Expr) bool {
		switch n.(type) {
		case *ColRef, *AggCall:
			constant = false
			return false
		default:
			// Every other node is constant if its children are.
		}
		return true
	})
	return constant
}

// FoldConstants evaluates constant subtrees to literals. It is
// conservative: a subtree that fails to evaluate (e.g. division by zero)
// is left intact so the error surfaces at execution time. Fold also
// simplifies boolean identities over TRUE/FALSE and x AND x.
func FoldConstants(e Expr) Expr {
	return Transform(e, func(n Expr) Expr {
		if _, ok := n.(*Const); ok {
			return n
		}
		if b, ok := n.(*Binary); ok && b.Op.Logical() {
			if s := simplifyLogical(b); s != nil {
				return s
			}
		}
		if !IsConst(n) {
			return n
		}
		v, err := n.Eval(nil)
		if err != nil {
			return n
		}
		return &Const{Val: v}
	})
}

// simplifyLogical applies TRUE/FALSE identities to a logical binary node.
// It returns nil when no simplification applies.
func simplifyLogical(b *Binary) Expr {
	lc, lIsConst := b.L.(*Const)
	rc, rIsConst := b.R.(*Const)
	boolVal := func(c *Const) (bool, bool) {
		if c.Val.Kind() != types.KindBool {
			return false, false
		}
		return c.Val.Bool(), true
	}
	if lIsConst {
		if v, ok := boolVal(lc); ok {
			switch {
			case b.Op == OpAnd && v, b.Op == OpOr && !v:
				return b.R
			case b.Op == OpAnd && !v:
				return NewConst(types.NewBool(false))
			case b.Op == OpOr && v:
				return NewConst(types.NewBool(true))
			}
		}
	}
	if rIsConst {
		if v, ok := boolVal(rc); ok {
			switch {
			case b.Op == OpAnd && v, b.Op == OpOr && !v:
				return b.L
			case b.Op == OpAnd && !v:
				return NewConst(types.NewBool(false))
			case b.Op == OpOr && v:
				return NewConst(types.NewBool(true))
			}
		}
	}
	return nil
}

// Equal reports structural equality of two expressions (after String
// normalization — adequate for rule idempotence checks and tests).
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}
