package expr

import (
	"testing"

	"gis/internal/types"
)

func TestFingerprint(t *testing.T) {
	col := func(name string) Expr { return NewColRef("", name) }
	num := func(n int64) Expr { return NewConst(types.NewInt(n)) }
	str := func(s string) Expr { return NewConst(types.NewString(s)) }

	eqA := NewBinary(OpEq, col("region"), str("EMEA"))
	eqB := NewBinary(OpEq, col("region"), str("APAC"))
	if Fingerprint(eqA) != Fingerprint(eqB) {
		t.Errorf("constant-only variants differ: %q vs %q", Fingerprint(eqA), Fingerprint(eqB))
	}
	if Fingerprint(eqA) != "(region = ?)" {
		t.Errorf("Fingerprint = %q", Fingerprint(eqA))
	}

	// IN lists of constants collapse to one placeholder regardless of
	// arity.
	in3 := &InList{E: col("id"), List: []Expr{num(1), num(2), num(3)}}
	in5 := &InList{E: col("id"), List: []Expr{num(4), num(5), num(6), num(7), num(8)}}
	if Fingerprint(in3) != Fingerprint(in5) {
		t.Errorf("IN arity leaked: %q vs %q", Fingerprint(in3), Fingerprint(in5))
	}
	if Fingerprint(in3) != "(id IN (?))" {
		t.Errorf("IN fingerprint = %q", Fingerprint(in3))
	}
	// Non-constant IN elements keep their structure.
	inCol := &InList{E: col("id"), List: []Expr{col("other"), num(9)}}
	if Fingerprint(inCol) != "(id IN (other))" {
		t.Errorf("mixed IN fingerprint = %q", Fingerprint(inCol))
	}

	// Different operators stay distinct.
	lt := NewBinary(OpLt, col("region"), str("EMEA"))
	if Fingerprint(eqA) == Fingerprint(lt) {
		t.Error("= and < share a fingerprint")
	}

	// Nil means an unfiltered scan.
	if Fingerprint(nil) != "true" {
		t.Errorf("Fingerprint(nil) = %q", Fingerprint(nil))
	}

	// Compound predicate keeps shape while hiding values.
	and := NewBinary(OpAnd, eqA, NewBinary(OpGt, col("score"), num(10)))
	if Fingerprint(and) != "((region = ?) AND (score > ?))" {
		t.Errorf("compound = %q", Fingerprint(and))
	}
}
