package expr

import (
	"fmt"
	"math"
	"strings"

	"gis/internal/types"
)

// builtin describes one scalar function known to the engine.
type builtin struct {
	name string
	// minArgs/maxArgs bound the accepted arity; maxArgs<0 means variadic.
	minArgs, maxArgs int
	// resultType infers the return kind from bound argument kinds.
	resultType func(args []types.Kind) (types.Kind, error)
	// eval computes the result. Arguments may be NULL only when
	// nullPropagating is false.
	eval func(args []types.Value) (types.Value, error)
	// nullPropagating short-circuits to NULL when any argument is NULL.
	nullPropagating bool
}

func fixedType(k types.Kind) func([]types.Kind) (types.Kind, error) {
	return func([]types.Kind) (types.Kind, error) { return k, nil }
}

func sameAsArg(i int) func([]types.Kind) (types.Kind, error) {
	return func(args []types.Kind) (types.Kind, error) { return args[i], nil }
}

func numericArg(i int) func([]types.Kind) (types.Kind, error) {
	return func(args []types.Kind) (types.Kind, error) {
		if args[i] != types.KindNull && !args[i].Numeric() {
			return types.KindNull, fmt.Errorf("argument %d must be numeric, got %s", i+1, args[i])
		}
		return args[i], nil
	}
}

// builtins is the scalar function registry, keyed by upper-case name.
var builtins = map[string]*builtin{}

func register(b *builtin) { builtins[b.name] = b }

// LookupFunc reports whether name is a known scalar function.
func LookupFunc(name string) bool {
	_, ok := builtins[strings.ToUpper(name)]
	return ok
}

func init() {
	register(&builtin{
		name: "ABS", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: numericArg(0),
		eval: func(args []types.Value) (types.Value, error) {
			if args[0].Kind() == types.KindInt {
				v := args[0].Int()
				if v < 0 {
					v = -v
				}
				return types.NewInt(v), nil
			}
			return types.NewFloat(math.Abs(args[0].AsFloat())), nil
		},
	})
	register(&builtin{
		name: "CEIL", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindFloat),
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewFloat(math.Ceil(args[0].AsFloat())), nil
		},
	})
	register(&builtin{
		name: "FLOOR", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindFloat),
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewFloat(math.Floor(args[0].AsFloat())), nil
		},
	})
	register(&builtin{
		name: "ROUND", minArgs: 1, maxArgs: 2, nullPropagating: true,
		resultType: fixedType(types.KindFloat),
		eval: func(args []types.Value) (types.Value, error) {
			f := args[0].AsFloat()
			scale := 0.0
			if len(args) == 2 {
				scale = args[1].AsFloat()
			}
			p := math.Pow(10, scale)
			return types.NewFloat(math.Round(f*p) / p), nil
		},
	})
	register(&builtin{
		name: "SQRT", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindFloat),
		eval: func(args []types.Value) (types.Value, error) {
			f := args[0].AsFloat()
			if f < 0 {
				return types.Null, fmt.Errorf("SQRT of negative value %v", f)
			}
			return types.NewFloat(math.Sqrt(f)), nil
		},
	})
	register(&builtin{
		name: "POW", minArgs: 2, maxArgs: 2, nullPropagating: true,
		resultType: fixedType(types.KindFloat),
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewFloat(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
		},
	})
	register(&builtin{
		name: "LOWER", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindString),
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewString(strings.ToLower(args[0].Str())), nil
		},
	})
	register(&builtin{
		name: "UPPER", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindString),
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewString(strings.ToUpper(args[0].Str())), nil
		},
	})
	register(&builtin{
		name: "LENGTH", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindInt),
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewInt(int64(len(args[0].Str()))), nil
		},
	})
	register(&builtin{
		name: "TRIM", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindString),
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewString(strings.TrimSpace(args[0].Str())), nil
		},
	})
	register(&builtin{
		name: "SUBSTR", minArgs: 2, maxArgs: 3, nullPropagating: true,
		resultType: fixedType(types.KindString),
		eval: func(args []types.Value) (types.Value, error) {
			s := args[0].Str()
			// SQL SUBSTR is 1-based.
			start := int(args[1].Int()) - 1
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				start = len(s)
			}
			end := len(s)
			if len(args) == 3 {
				if n := int(args[2].Int()); start+n < end {
					end = start + n
				}
			}
			if end < start {
				end = start
			}
			return types.NewString(s[start:end]), nil
		},
	})
	register(&builtin{
		name: "REPLACE", minArgs: 3, maxArgs: 3, nullPropagating: true,
		resultType: fixedType(types.KindString),
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewString(strings.ReplaceAll(args[0].Str(), args[1].Str(), args[2].Str())), nil
		},
	})
	register(&builtin{
		name: "CONCAT", minArgs: 1, maxArgs: -1, nullPropagating: false,
		resultType: fixedType(types.KindString),
		eval: func(args []types.Value) (types.Value, error) {
			var b strings.Builder
			for _, a := range args {
				if a.IsNull() {
					continue
				}
				s, err := a.Coerce(types.KindString)
				if err != nil {
					return types.Null, err
				}
				b.WriteString(s.Str())
			}
			return types.NewString(b.String()), nil
		},
	})
	register(&builtin{
		name: "COALESCE", minArgs: 1, maxArgs: -1, nullPropagating: false,
		resultType: func(args []types.Kind) (types.Kind, error) {
			for _, k := range args {
				if k != types.KindNull {
					return k, nil
				}
			}
			return types.KindNull, nil
		},
		eval: func(args []types.Value) (types.Value, error) {
			for _, a := range args {
				if !a.IsNull() {
					return a, nil
				}
			}
			return types.Null, nil
		},
	})
	register(&builtin{
		name: "NULLIF", minArgs: 2, maxArgs: 2, nullPropagating: false,
		resultType: sameAsArg(0),
		eval: func(args []types.Value) (types.Value, error) {
			if !args[0].IsNull() && !args[1].IsNull() && args[0].Compare(args[1]) == 0 {
				return types.Null, nil
			}
			return args[0], nil
		},
	})
	register(&builtin{
		name: "YEAR", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindInt),
		eval: func(args []types.Value) (types.Value, error) {
			if args[0].Kind() != types.KindTime {
				return types.Null, fmt.Errorf("YEAR requires TIME argument")
			}
			return types.NewInt(int64(args[0].Time().Year())), nil
		},
	})
	register(&builtin{
		name: "MONTH", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindInt),
		eval: func(args []types.Value) (types.Value, error) {
			if args[0].Kind() != types.KindTime {
				return types.Null, fmt.Errorf("MONTH requires TIME argument")
			}
			return types.NewInt(int64(args[0].Time().Month())), nil
		},
	})
	register(&builtin{
		name: "DAY", minArgs: 1, maxArgs: 1, nullPropagating: true,
		resultType: fixedType(types.KindInt),
		eval: func(args []types.Value) (types.Value, error) {
			if args[0].Kind() != types.KindTime {
				return types.Null, fmt.Errorf("DAY requires TIME argument")
			}
			return types.NewInt(int64(args[0].Time().Day())), nil
		},
	})
}
