package expr

import (
	"fmt"
	"strings"

	"gis/internal/types"
)

// Bind resolves every column reference in e against schema and infers
// result types bottom-up. It returns a new, bound expression tree; the
// input is not modified. Binding an already-bound tree is harmless:
// resolved references keep their positions only if the schema still
// agrees, otherwise they are re-resolved by name.
func Bind(e Expr, schema *types.Schema) (Expr, error) {
	switch n := e.(type) {
	case *ColRef:
		idx := n.Index
		// Re-resolve by name when possible; synthesized refs may be
		// nameless and are trusted as-is.
		if n.Name != "" {
			i, err := schema.IndexOf(n.Table, n.Name)
			if err != nil {
				return nil, err
			}
			idx = i
		}
		if idx < 0 || idx >= schema.Len() {
			return nil, fmt.Errorf("column reference %s out of range", n)
		}
		return &ColRef{Table: n.Table, Name: n.Name, Index: idx, Type: schema.Columns[idx].Type}, nil

	case *Const:
		return n, nil

	case *Binary:
		l, err := Bind(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := Bind(n.R, schema)
		if err != nil {
			return nil, err
		}
		typ, err := binaryResultType(n.Op, l.ResultType(), r.ResultType())
		if err != nil {
			return nil, fmt.Errorf("%v in %s", err, n)
		}
		return &Binary{Op: n.Op, L: l, R: r, typ: typ}, nil

	case *Unary:
		inner, err := Bind(n.E, schema)
		if err != nil {
			return nil, err
		}
		var typ types.Kind
		switch n.Op {
		case OpNeg:
			typ = inner.ResultType()
			if typ != types.KindNull && !typ.Numeric() {
				return nil, fmt.Errorf("cannot negate %s in %s", typ, n)
			}
		case OpNot:
			typ = types.KindBool
		}
		return &Unary{Op: n.Op, E: inner, typ: typ}, nil

	case *IsNull:
		inner, err := Bind(n.E, schema)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: inner, Negate: n.Negate}, nil

	case *InList:
		inner, err := Bind(n.E, schema)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(n.List))
		for i, le := range n.List {
			b, err := Bind(le, schema)
			if err != nil {
				return nil, err
			}
			list[i] = b
		}
		return &InList{E: inner, List: list, Negate: n.Negate}, nil

	case *Case:
		out := &Case{}
		if n.Operand != nil {
			op, err := Bind(n.Operand, schema)
			if err != nil {
				return nil, err
			}
			out.Operand = op
		}
		out.Whens = make([]When, len(n.Whens))
		for i, w := range n.Whens {
			cond, err := Bind(w.Cond, schema)
			if err != nil {
				return nil, err
			}
			then, err := Bind(w.Then, schema)
			if err != nil {
				return nil, err
			}
			out.Whens[i] = When{Cond: cond, Then: then}
			out.typ = unify(out.typ, then.ResultType())
		}
		if n.Else != nil {
			els, err := Bind(n.Else, schema)
			if err != nil {
				return nil, err
			}
			out.Else = els
			out.typ = unify(out.typ, els.ResultType())
		}
		return out, nil

	case *Cast:
		inner, err := Bind(n.E, schema)
		if err != nil {
			return nil, err
		}
		return &Cast{E: inner, To: n.To}, nil

	case *Call:
		fn, ok := builtins[strings.ToUpper(n.Name)]
		if !ok {
			return nil, fmt.Errorf("unknown function %s", n.Name)
		}
		if len(n.Args) < fn.minArgs || (fn.maxArgs >= 0 && len(n.Args) > fn.maxArgs) {
			return nil, fmt.Errorf("%s: wrong argument count %d", n.Name, len(n.Args))
		}
		args := make([]Expr, len(n.Args))
		kinds := make([]types.Kind, len(n.Args))
		for i, a := range n.Args {
			b, err := Bind(a, schema)
			if err != nil {
				return nil, err
			}
			args[i] = b
			kinds[i] = b.ResultType()
		}
		typ, err := fn.resultType(kinds)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", n.Name, err)
		}
		return &Call{Name: fn.name, Args: args, fn: fn, typ: typ}, nil

	case *AggCall:
		out := &AggCall{Kind: n.Kind, Distinct: n.Distinct}
		if n.Arg != nil {
			arg, err := Bind(n.Arg, schema)
			if err != nil {
				return nil, err
			}
			out.Arg = arg
		}
		out.typ = AggResultType(n.Kind, argKind(out.Arg))
		return out, nil

	case *Subquery:
		out := *n
		if n.Operand != nil {
			op, err := Bind(n.Operand, schema)
			if err != nil {
				return nil, err
			}
			out.Operand = op
		}
		return &out, nil

	default:
		return nil, fmt.Errorf("cannot bind expression node %T", e)
	}
}

func argKind(e Expr) types.Kind {
	if e == nil {
		return types.KindNull
	}
	return e.ResultType()
}

// AggResultType returns the output kind of an aggregate over an input of
// the given kind.
func AggResultType(k AggKind, in types.Kind) types.Kind {
	switch k {
	case AggCount:
		return types.KindInt
	case AggAvg:
		return types.KindFloat
	case AggSum:
		if in == types.KindFloat {
			return types.KindFloat
		}
		return types.KindInt
	default: // MIN, MAX preserve input type
		return in
	}
}

func binaryResultType(op BinOp, l, r types.Kind) (types.Kind, error) {
	// NULL literals type-check against anything.
	switch {
	case op.Comparison():
		if l != types.KindNull && r != types.KindNull && !comparable(l, r) {
			return types.KindNull, fmt.Errorf("cannot compare %s with %s", l, r)
		}
		return types.KindBool, nil
	case op.Logical():
		return types.KindBool, nil
	case op == OpLike:
		if (l != types.KindString && l != types.KindNull) || (r != types.KindString && r != types.KindNull) {
			return types.KindNull, fmt.Errorf("LIKE requires STRING operands")
		}
		return types.KindBool, nil
	case op == OpConcat:
		return types.KindString, nil
	default: // arithmetic
		if l == types.KindNull {
			l = r
		}
		if r == types.KindNull {
			r = l
		}
		if l == types.KindNull && r == types.KindNull {
			return types.KindNull, nil
		}
		if !l.Numeric() || !r.Numeric() {
			return types.KindNull, fmt.Errorf("arithmetic requires numeric operands, got %s and %s", l, r)
		}
		if l == types.KindFloat || r == types.KindFloat {
			return types.KindFloat, nil
		}
		return types.KindInt, nil
	}
}

// unify merges two branch types for CASE; mixed int/float unifies to
// float, anything else keeps the first non-null type.
func unify(a, b types.Kind) types.Kind {
	if a == types.KindNull {
		return b
	}
	if b == types.KindNull {
		return a
	}
	if a == b {
		return a
	}
	if a.Numeric() && b.Numeric() {
		return types.KindFloat
	}
	return a
}
