package expr

import (
	"fmt"
	"math"
	"strings"

	"gis/internal/types"
)

// Eval implements Expr for Binary with SQL tri-state NULL semantics:
// comparisons and arithmetic over NULL yield NULL; AND/OR use three-valued
// logic (NULL AND false = false, NULL OR true = true).
func (b *Binary) Eval(row types.Row) (types.Value, error) {
	if b.Op.Logical() {
		return b.evalLogical(row)
	}
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	switch {
	case b.Op.Comparison():
		return evalComparison(b.Op, l, r)
	case b.Op.Arithmetic():
		return evalArith(b.Op, l, r)
	case b.Op == OpLike:
		return evalLike(l, r)
	case b.Op == OpConcat:
		ls, err := l.Coerce(types.KindString)
		if err != nil {
			return types.Null, err
		}
		rs, err := r.Coerce(types.KindString)
		if err != nil {
			return types.Null, err
		}
		return types.NewString(ls.Str() + rs.Str()), nil
	}
	return types.Null, fmt.Errorf("unhandled binary operator %s", b.Op)
}

func (b *Binary) evalLogical(row types.Row) (types.Value, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null, err
	}
	// Short-circuit where three-valued logic allows it.
	if !l.IsNull() {
		lb, err := truthy(l)
		if err != nil {
			return types.Null, err
		}
		if b.Op == OpAnd && !lb {
			return types.NewBool(false), nil
		}
		if b.Op == OpOr && lb {
			return types.NewBool(true), nil
		}
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if r.IsNull() {
		if l.IsNull() {
			return types.Null, nil
		}
		lb, err := truthy(l)
		if err != nil {
			return types.Null, err
		}
		// l known; short-circuit above didn't fire, so l doesn't decide.
		_ = lb
		return types.Null, nil
	}
	rb, err := truthy(r)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() {
		if b.Op == OpAnd && !rb {
			return types.NewBool(false), nil
		}
		if b.Op == OpOr && rb {
			return types.NewBool(true), nil
		}
		return types.Null, nil
	}
	lb, err := truthy(l)
	if err != nil {
		return types.Null, err
	}
	if b.Op == OpAnd {
		return types.NewBool(lb && rb), nil
	}
	return types.NewBool(lb || rb), nil
}

func truthy(v types.Value) (bool, error) {
	switch v.Kind() {
	case types.KindBool:
		return v.Bool(), nil
	case types.KindInt:
		return v.Int() != 0, nil
	default:
		return false, fmt.Errorf("expected BOOL operand, got %s", v.Kind())
	}
}

func evalComparison(op BinOp, l, r types.Value) (types.Value, error) {
	if !comparable(l.Kind(), r.Kind()) {
		return types.Null, fmt.Errorf("cannot compare %s with %s", l.Kind(), r.Kind())
	}
	c := l.Compare(r)
	switch op {
	case OpEq:
		return types.NewBool(c == 0), nil
	case OpNe:
		return types.NewBool(c != 0), nil
	case OpLt:
		return types.NewBool(c < 0), nil
	case OpLe:
		return types.NewBool(c <= 0), nil
	case OpGt:
		return types.NewBool(c > 0), nil
	case OpGe:
		return types.NewBool(c >= 0), nil
	default:
		return types.Null, fmt.Errorf("not a comparison: %s", op)
	}
}

func comparable(a, b types.Kind) bool {
	if a == b {
		return true
	}
	return a.Numeric() && b.Numeric()
}

func evalArith(op BinOp, l, r types.Value) (types.Value, error) {
	if !l.Kind().Numeric() || !r.Kind().Numeric() {
		return types.Null, fmt.Errorf("arithmetic %s over non-numeric operands %s, %s", op, l.Kind(), r.Kind())
	}
	if l.Kind() == types.KindInt && r.Kind() == types.KindInt {
		a, b := l.Int(), r.Int()
		switch op {
		case OpAdd:
			return types.NewInt(a + b), nil
		case OpSub:
			return types.NewInt(a - b), nil
		case OpMul:
			return types.NewInt(a * b), nil
		case OpDiv:
			if b == 0 {
				return types.Null, fmt.Errorf("division by zero")
			}
			return types.NewInt(a / b), nil
		case OpMod:
			if b == 0 {
				return types.Null, fmt.Errorf("modulo by zero")
			}
			return types.NewInt(a % b), nil
		default:
			// Not integer arithmetic: fall through to the float path,
			// whose default reports the error.
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return types.NewFloat(a + b), nil
	case OpSub:
		return types.NewFloat(a - b), nil
	case OpMul:
		return types.NewFloat(a * b), nil
	case OpDiv:
		if b == 0 {
			return types.Null, fmt.Errorf("division by zero")
		}
		return types.NewFloat(a / b), nil
	case OpMod:
		if b == 0 {
			return types.Null, fmt.Errorf("modulo by zero")
		}
		return types.NewFloat(math.Mod(a, b)), nil
	default:
		return types.Null, fmt.Errorf("not arithmetic: %s", op)
	}
}

// evalLike implements SQL LIKE with % and _ wildcards (case-sensitive).
func evalLike(l, r types.Value) (types.Value, error) {
	if l.Kind() != types.KindString || r.Kind() != types.KindString {
		return types.Null, fmt.Errorf("LIKE requires STRING operands")
	}
	return types.NewBool(likeMatch(l.Str(), r.Str())), nil
}

// likeMatch matches s against a LIKE pattern using iterative backtracking
// (the classic two-pointer wildcard algorithm, with % as * and _ as ?).
func likeMatch(s, pattern string) bool {
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// Eval implements Expr for Unary.
func (u *Unary) Eval(row types.Row) (types.Value, error) {
	v, err := u.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() {
		return types.Null, nil
	}
	switch u.Op {
	case OpNeg:
		switch v.Kind() {
		case types.KindInt:
			return types.NewInt(-v.Int()), nil
		case types.KindFloat:
			return types.NewFloat(-v.Float()), nil
		default:
			return types.Null, fmt.Errorf("cannot negate %s", v.Kind())
		}
	case OpNot:
		b, err := truthy(v)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(!b), nil
	}
	return types.Null, fmt.Errorf("unhandled unary operator %d", u.Op)
}

// Eval implements Expr for IsNull.
func (n *IsNull) Eval(row types.Row) (types.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(v.IsNull() != n.Negate), nil
}

// Eval implements Expr for InList with SQL semantics: if no element
// matches and any element (or the operand) is NULL, the result is NULL.
func (n *InList) Eval(row types.Row) (types.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() {
		return types.Null, nil
	}
	n.setOnce.Do(n.buildSet)
	if n.set != nil {
		for _, cand := range n.set[v.Hash(0)] {
			if comparable(v.Kind(), cand.Kind()) && v.Compare(cand) == 0 {
				return types.NewBool(!n.Negate), nil
			}
		}
		if n.setHasNull {
			return types.Null, nil
		}
		return types.NewBool(n.Negate), nil
	}
	sawNull := false
	for _, e := range n.List {
		ev, err := e.Eval(row)
		if err != nil {
			return types.Null, err
		}
		if ev.IsNull() {
			sawNull = true
			continue
		}
		if comparable(v.Kind(), ev.Kind()) && v.Compare(ev) == 0 {
			return types.NewBool(!n.Negate), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(n.Negate), nil
}

// Eval implements Expr for Case.
func (c *Case) Eval(row types.Row) (types.Value, error) {
	var operand types.Value
	if c.Operand != nil {
		var err error
		operand, err = c.Operand.Eval(row)
		if err != nil {
			return types.Null, err
		}
	}
	for _, w := range c.Whens {
		cv, err := w.Cond.Eval(row)
		if err != nil {
			return types.Null, err
		}
		var hit bool
		if c.Operand != nil {
			hit = !operand.IsNull() && !cv.IsNull() && operand.Compare(cv) == 0
		} else if !cv.IsNull() {
			hit, err = truthy(cv)
			if err != nil {
				return types.Null, err
			}
		}
		if hit {
			v, err := w.Then.Eval(row)
			if err != nil {
				return types.Null, err
			}
			return coerceTo(v, c.typ)
		}
	}
	if c.Else != nil {
		v, err := c.Else.Eval(row)
		if err != nil {
			return types.Null, err
		}
		return coerceTo(v, c.typ)
	}
	return types.Null, nil
}

func coerceTo(v types.Value, k types.Kind) (types.Value, error) {
	if k == types.KindNull || v.IsNull() || v.Kind() == k {
		return v, nil
	}
	return v.Coerce(k)
}

// Eval implements Expr for Cast.
func (c *Cast) Eval(row types.Row) (types.Value, error) {
	v, err := c.E.Eval(row)
	if err != nil {
		return types.Null, err
	}
	return v.Coerce(c.To)
}

// Eval implements Expr for Call.
func (c *Call) Eval(row types.Row) (types.Value, error) {
	if c.fn == nil {
		return types.Null, fmt.Errorf("call to unbound function %s", c.Name)
	}
	args := make([]types.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(row)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	if c.fn.nullPropagating {
		for _, a := range args {
			if a.IsNull() {
				return types.Null, nil
			}
		}
	}
	return c.fn.eval(args)
}

// EvalBool evaluates a predicate and applies SQL WHERE semantics: a row
// passes only if the predicate is TRUE (NULL and FALSE both reject).
func EvalBool(e Expr, row types.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return truthy(v)
}

// LikePrefixToRange converts a LIKE pattern with a literal prefix (e.g.
// 'abc%') into a [lo, hi) string range usable by an ordered index. It
// returns ok=false when the pattern has no usable literal prefix.
func LikePrefixToRange(pattern string) (lo, hi string, ok bool) {
	i := strings.IndexAny(pattern, "%_")
	if i <= 0 {
		return "", "", false
	}
	prefix := pattern[:i]
	b := []byte(prefix)
	for j := len(b) - 1; j >= 0; j-- {
		if b[j] < 0xff {
			b[j]++
			return prefix, string(b[:j+1]), true
		}
	}
	return prefix, "", false
}
