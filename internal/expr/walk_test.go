package expr

import (
	"testing"

	"gis/internal/types"
)

func TestConjunctsConjoin(t *testing.T) {
	a := bin(OpGt, col("a"), intc(1))
	b := bin(OpLt, col("a"), intc(9))
	c := bin(OpEq, col("s"), strc("x"))
	e := Conjoin([]Expr{a, b, c})
	parts := Conjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("Conjuncts = %d parts", len(parts))
	}
	if parts[0].String() != a.String() || parts[2].String() != c.String() {
		t.Errorf("Conjuncts order wrong: %v", parts)
	}
	if Conjoin(nil) != nil {
		t.Error("Conjoin(nil) must be nil")
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) must be nil")
	}
	if got := Conjoin([]Expr{nil, a, nil}); got.String() != a.String() {
		t.Errorf("Conjoin skips nils: %v", got)
	}
}

func TestColumnsAndColumnSet(t *testing.T) {
	e := mustBind(t, bin(OpAnd,
		bin(OpGt, col("a"), intc(1)),
		bin(OpEq, col("s"), strc("x"))))
	cols := Columns(e)
	if len(cols) != 2 {
		t.Fatalf("Columns = %v", cols)
	}
	set := ColumnSet(e)
	if _, ok := set[0]; !ok {
		t.Error("ColumnSet missing index 0 (a)")
	}
	if _, ok := set[2]; !ok {
		t.Error("ColumnSet missing index 2 (s)")
	}
}

func TestHasAggregate(t *testing.T) {
	if HasAggregate(bin(OpGt, col("a"), intc(1))) {
		t.Error("plain predicate has no aggregate")
	}
	agg := &AggCall{Kind: AggSum, Arg: col("a")}
	if !HasAggregate(bin(OpGt, agg, intc(1))) {
		t.Error("aggregate not detected")
	}
}

func TestRemapShift(t *testing.T) {
	e := mustBind(t, bin(OpAdd, col("a"), col("b"))) // indexes 0, 1
	r := Remap(e, map[int]int{0: 5, 1: 6})
	cols := Columns(r)
	if cols[0].Index != 5 || cols[1].Index != 6 {
		t.Errorf("Remap = %v", r)
	}
	// Original untouched.
	if Columns(e)[0].Index != 0 {
		t.Error("Remap mutated input")
	}
	s := Shift(e, 3)
	cols = Columns(s)
	if cols[0].Index != 3 || cols[1].Index != 4 {
		t.Errorf("Shift = %v", s)
	}
	if Shift(e, 0) != e {
		t.Error("Shift(0) should return the same tree")
	}
	if MaxColumnIndex(s) != 4 {
		t.Errorf("MaxColumnIndex = %d", MaxColumnIndex(s))
	}
}

func TestIsConstAndFold(t *testing.T) {
	if !IsConst(bin(OpAdd, intc(1), intc(2))) {
		t.Error("1+2 is const")
	}
	if IsConst(bin(OpAdd, col("a"), intc(2))) {
		t.Error("a+2 is not const")
	}
	e := mustBind(t, bin(OpMul, bin(OpAdd, intc(1), intc(2)), col("a")))
	f := FoldConstants(e)
	// (1+2) should fold to 3.
	if f.String() != "(3 * a)" {
		t.Errorf("FoldConstants = %s", f)
	}
	// Division by zero must not fold (error deferred to execution).
	e = mustBind(t, bin(OpDiv, intc(1), intc(0)))
	f = FoldConstants(e)
	if _, isConst := f.(*Const); isConst {
		t.Error("1/0 must not fold to a constant")
	}
}

func TestFoldBooleanIdentities(t *testing.T) {
	p := mustBind(t, bin(OpGt, col("a"), intc(1)))
	cases := []struct {
		e    Expr
		want string
	}{
		{bin(OpAnd, boolc(true), p), p.String()},
		{bin(OpAnd, p, boolc(true)), p.String()},
		{bin(OpAnd, boolc(false), p), "false"},
		{bin(OpOr, boolc(false), p), p.String()},
		{bin(OpOr, boolc(true), p), "true"},
		{bin(OpOr, p, boolc(true)), "true"},
	}
	for _, c := range cases {
		got := FoldConstants(mustBind(t, c.e))
		if got.String() != c.want {
			t.Errorf("fold(%s) = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestTransformPreservesStructure(t *testing.T) {
	e := mustBind(t, &Case{
		Operand: col("a"),
		Whens:   []When{{Cond: intc(1), Then: strc("one")}, {Cond: intc(2), Then: strc("two")}},
		Else:    strc("other"),
	})
	// Identity transform returns an equal tree.
	id := Transform(e, func(n Expr) Expr { return n })
	if id.String() != e.String() {
		t.Errorf("identity transform changed tree: %s vs %s", id, e)
	}
	// Replace all string constants.
	repl := Transform(e, func(n Expr) Expr {
		if c, ok := n.(*Const); ok && c.Val.Kind() == types.KindString {
			return strc("X")
		}
		return n
	})
	if repl.String() != "CASE a WHEN 1 THEN 'X' WHEN 2 THEN 'X' ELSE 'X' END" {
		t.Errorf("transform = %s", repl)
	}
}

func TestCommutes(t *testing.T) {
	cases := []struct {
		in, out BinOp
		ok      bool
	}{
		{OpEq, OpEq, true},
		{OpLt, OpGt, true},
		{OpLe, OpGe, true},
		{OpGt, OpLt, true},
		{OpGe, OpLe, true},
		{OpSub, OpSub, false},
		{OpLike, OpLike, false},
	}
	for _, c := range cases {
		got, ok := c.in.Commutes()
		if ok != c.ok || (ok && got != c.out) {
			t.Errorf("%s.Commutes() = %s,%v", c.in, got, ok)
		}
	}
}

func TestExprEqual(t *testing.T) {
	a := bin(OpGt, col("a"), intc(1))
	b := bin(OpGt, col("a"), intc(1))
	if !Equal(a, b) {
		t.Error("structurally equal exprs must be Equal")
	}
	if Equal(a, nil) || !Equal(nil, nil) {
		t.Error("nil handling broken")
	}
}
