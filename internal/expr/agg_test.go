package expr

import (
	"testing"
	"testing/quick"

	"gis/internal/types"
)

func feed(t *testing.T, a Accumulator, vals ...types.Value) {
	t.Helper()
	for _, v := range vals {
		if err := a.Add(v); err != nil {
			t.Fatalf("Add(%v): %v", v, err)
		}
	}
}

func TestCountAccumulator(t *testing.T) {
	a := NewAccumulator(AggCount, false, false)
	feed(t, a, types.NewInt(1), types.Null, types.NewInt(3))
	if got := a.Result().Int(); got != 2 {
		t.Errorf("COUNT(col) = %d, want 2 (NULLs skipped)", got)
	}
	star := NewAccumulator(AggCount, true, false)
	feed(t, star, types.NewInt(1), types.Null, types.NewInt(3))
	if got := star.Result().Int(); got != 3 {
		t.Errorf("COUNT(*) = %d, want 3", got)
	}
}

func TestSumAccumulator(t *testing.T) {
	a := NewAccumulator(AggSum, false, false)
	if !a.Result().IsNull() {
		t.Error("SUM of empty input must be NULL")
	}
	feed(t, a, types.NewInt(1), types.NewInt(2), types.Null)
	if got := a.Result(); got.Kind() != types.KindInt || got.Int() != 3 {
		t.Errorf("SUM = %v", got)
	}
	// Int→float promotion mid-stream.
	feed(t, a, types.NewFloat(0.5))
	if got := a.Result(); got.Kind() != types.KindFloat || got.Float() != 3.5 {
		t.Errorf("SUM promoted = %v", got)
	}
	if err := a.Add(types.NewString("x")); err == nil {
		t.Error("SUM over string must error")
	}
}

func TestAvgAccumulator(t *testing.T) {
	a := NewAccumulator(AggAvg, false, false)
	if !a.Result().IsNull() {
		t.Error("AVG of empty input must be NULL")
	}
	feed(t, a, types.NewInt(1), types.NewInt(2), types.Null, types.NewInt(3))
	if got := a.Result().Float(); got != 2.0 {
		t.Errorf("AVG = %v", got)
	}
}

func TestMinMaxAccumulator(t *testing.T) {
	mn := NewAccumulator(AggMin, false, false)
	mx := NewAccumulator(AggMax, false, false)
	for _, v := range []types.Value{types.NewInt(5), types.Null, types.NewInt(2), types.NewInt(8)} {
		mn.Add(v)
		mx.Add(v)
	}
	if mn.Result().Int() != 2 || mx.Result().Int() != 8 {
		t.Errorf("MIN/MAX = %v/%v", mn.Result(), mx.Result())
	}
	s := NewAccumulator(AggMin, false, false)
	feed(t, s, types.NewString("banana"), types.NewString("apple"))
	if s.Result().Str() != "apple" {
		t.Errorf("MIN strings = %v", s.Result())
	}
}

func TestDistinctAccumulator(t *testing.T) {
	a := NewAccumulator(AggCount, false, true)
	feed(t, a, types.NewInt(1), types.NewInt(1), types.NewInt(2), types.Null, types.NewInt(2))
	if got := a.Result().Int(); got != 2 {
		t.Errorf("COUNT(DISTINCT) = %d, want 2", got)
	}
	s := NewAccumulator(AggSum, false, true)
	feed(t, s, types.NewInt(3), types.NewInt(3), types.NewInt(4))
	if got := s.Result().Int(); got != 7 {
		t.Errorf("SUM(DISTINCT) = %d, want 7", got)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	a := NewAccumulator(AggSum, false, false)
	b := NewAccumulator(AggSum, false, false)
	feed(t, a, types.NewInt(1), types.NewInt(2))
	feed(t, b, types.NewInt(10))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Result().Int() != 13 {
		t.Errorf("merged SUM = %v", a.Result())
	}
	// Merging an empty accumulator is a no-op.
	if err := a.Merge(NewAccumulator(AggSum, false, false)); err != nil {
		t.Fatal(err)
	}
	if a.Result().Int() != 13 {
		t.Error("merge with empty changed result")
	}
	// Count.
	c1 := NewAccumulator(AggCount, true, false)
	c2 := NewAccumulator(AggCount, true, false)
	feed(t, c1, types.NewInt(0), types.NewInt(0))
	feed(t, c2, types.NewInt(0))
	c1.Merge(c2)
	if c1.Result().Int() != 3 {
		t.Errorf("merged COUNT = %v", c1.Result())
	}
	// Avg merges by partial sums, not average-of-averages.
	v1 := NewAccumulator(AggAvg, false, false)
	v2 := NewAccumulator(AggAvg, false, false)
	feed(t, v1, types.NewInt(1), types.NewInt(2), types.NewInt(3))
	feed(t, v2, types.NewInt(10))
	v1.Merge(v2)
	if got := v1.Result().Float(); got != 4.0 {
		t.Errorf("merged AVG = %v, want 4", got)
	}
	// Distinct merge dedups across accumulators.
	d1 := NewAccumulator(AggCount, false, true)
	d2 := NewAccumulator(AggCount, false, true)
	feed(t, d1, types.NewInt(1), types.NewInt(2))
	feed(t, d2, types.NewInt(2), types.NewInt(3))
	d1.Merge(d2)
	if d1.Result().Int() != 3 {
		t.Errorf("merged COUNT DISTINCT = %v, want 3", d1.Result())
	}
	// Type mismatch errors.
	if err := NewAccumulator(AggMin, false, false).Merge(NewAccumulator(AggSum, false, false)); err == nil {
		t.Error("mismatched merge must error")
	}
}

func TestAggKindFromName(t *testing.T) {
	for name, want := range map[string]AggKind{
		"count": AggCount, "SUM": AggSum, "Min": AggMin, "max": AggMax, "avg": AggAvg,
	} {
		got, ok := AggKindFromName(name)
		if !ok || got != want {
			t.Errorf("AggKindFromName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := AggKindFromName("median"); ok {
		t.Error("unknown aggregate accepted")
	}
}

func TestAggResultType(t *testing.T) {
	cases := []struct {
		k    AggKind
		in   types.Kind
		want types.Kind
	}{
		{AggCount, types.KindString, types.KindInt},
		{AggAvg, types.KindInt, types.KindFloat},
		{AggSum, types.KindInt, types.KindInt},
		{AggSum, types.KindFloat, types.KindFloat},
		{AggMin, types.KindString, types.KindString},
		{AggMax, types.KindTime, types.KindTime},
	}
	for _, c := range cases {
		if got := AggResultType(c.k, c.in); got != c.want {
			t.Errorf("AggResultType(%s,%s) = %s, want %s", c.k, c.in, got, c.want)
		}
	}
}

// Property: SUM over ints equals the Go sum; merging a split equals the
// whole (partial-aggregation correctness).
func TestSumSplitMergeProperty(t *testing.T) {
	f := func(xs []int32, split uint8) bool {
		whole := NewAccumulator(AggSum, false, false)
		left := NewAccumulator(AggSum, false, false)
		right := NewAccumulator(AggSum, false, false)
		cut := 0
		if len(xs) > 0 {
			cut = int(split) % (len(xs) + 1)
		}
		var want int64
		for i, x := range xs {
			v := types.NewInt(int64(x))
			want += int64(x)
			whole.Add(v)
			if i < cut {
				left.Add(v)
			} else {
				right.Add(v)
			}
		}
		if err := left.Merge(right); err != nil {
			return false
		}
		if len(xs) == 0 {
			return whole.Result().IsNull() && left.Result().IsNull()
		}
		return whole.Result().Int() == want && left.Result().Int() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
