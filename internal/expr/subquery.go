package expr

import (
	"fmt"

	"gis/internal/types"
)

// SubqueryMode distinguishes the three subquery positions the dialect
// supports.
type SubqueryMode uint8

// Subquery modes.
const (
	// SubExists is EXISTS (SELECT ...).
	SubExists SubqueryMode = iota
	// SubIn is operand [NOT] IN (SELECT ...).
	SubIn
	// SubScalar is a parenthesized single-value subquery.
	SubScalar
)

// Subquery is a subquery appearing in an expression. The contained
// statement is opaque to this package (it is an *sql.SelectStmt); the
// planner decorrelates or pre-evaluates subqueries before execution, so a
// Subquery reaching Eval is a planning bug.
type Subquery struct {
	// Stmt is the parsed SELECT statement (*sql.SelectStmt).
	Stmt any
	// Mode says how the subquery is used.
	Mode SubqueryMode
	// Operand is the left operand of IN; nil otherwise.
	Operand Expr
	// Negate marks NOT IN / NOT EXISTS.
	Negate bool
	// Type is the result kind: BOOL for EXISTS/IN, set by the planner
	// for scalar subqueries.
	Type types.Kind
}

// ResultType implements Expr.
func (s *Subquery) ResultType() types.Kind {
	if s.Mode == SubScalar {
		return s.Type
	}
	return types.KindBool
}

// Eval implements Expr; subqueries must be planned away first.
func (s *Subquery) Eval(types.Row) (types.Value, error) {
	return types.Null, fmt.Errorf("subquery evaluated without planning: %s", s)
}

// String implements Expr, rendering the inner statement when it knows
// how to print itself (sql.SelectStmt does), so EXPLAIN output and AST
// round-trips stay faithful.
func (s *Subquery) String() string {
	body := "<subquery>"
	if str, ok := s.Stmt.(fmt.Stringer); ok {
		body = str.String()
	}
	switch s.Mode {
	case SubExists:
		if s.Negate {
			return "NOT EXISTS (" + body + ")"
		}
		return "EXISTS (" + body + ")"
	case SubIn:
		op := "IN"
		if s.Negate {
			op = "NOT IN"
		}
		return "(" + s.Operand.String() + " " + op + " (" + body + "))"
	default:
		return "(" + body + ")"
	}
}

// Children implements Expr.
func (s *Subquery) Children() []Expr {
	if s.Operand != nil {
		return []Expr{s.Operand}
	}
	return nil
}

func (s *Subquery) withChildren(kids []Expr) Expr {
	cp := *s
	if len(kids) > 0 {
		cp.Operand = kids[0]
	}
	return &cp
}

// HasSubquery reports whether the tree contains a Subquery node.
func HasSubquery(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if _, ok := n.(*Subquery); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
