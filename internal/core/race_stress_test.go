package core

import (
	"fmt"
	"sync"
	"testing"

	"gis/internal/plan"
)

// TestRaceStressBindJoinKeyShipping drives the bind-join strategy from
// many goroutines at once: each query materializes the left side, ships
// key chunks to both order fragments concurrently, and joins at the
// mediator. The engine and both relstores are shared, so fragment
// fan-out races against sibling queries. Run under -race.
func TestRaceStressBindJoinKeyShipping(t *testing.T) {
	if testing.Short() {
		t.Skip("race stress test")
	}
	e := newTestEngine(t)
	e.PlanOptions().ForceStrategy = plan.StrategyBind
	const (
		goroutines = 8
		iters      = 15
	)
	q := "SELECT c.name, o.oid FROM customers c JOIN orders o ON c.id = o.cust_id"
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := e.Query(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 6 {
					errs <- fmt.Errorf("bind join returned %d rows, want 6", len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRaceStressSemijoinAndParallelFragments mixes the semijoin
// strategy with parallel fragment scans across concurrent queries.
func TestRaceStressSemijoinAndParallelFragments(t *testing.T) {
	if testing.Short() {
		t.Skip("race stress test")
	}
	e := newTestEngine(t)
	e.PlanOptions().ForceStrategy = plan.StrategySemiJoin
	e.PlanOptions().ParallelFragments = true
	const (
		goroutines = 8
		iters      = 15
	)
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var q string
				var want int
				if (g+i)%2 == 0 {
					q = "SELECT o.oid, p.pname FROM orders o JOIN products p ON o.sku = p.sku"
					want = 6
				} else {
					q = "SELECT COUNT(*) FROM orders"
					want = 1
				}
				res, err := e.Query(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != want {
					errs <- fmt.Errorf("%q returned %d rows, want %d", q, len(res.Rows), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
