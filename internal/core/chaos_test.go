package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gis/internal/catalog"
	"gis/internal/expr"
	"gis/internal/faults"
	"gis/internal/obs"
	"gis/internal/plan"
	"gis/internal/relstore"
	"gis/internal/resilience"
	"gis/internal/source"
	"gis/internal/types"
	"gis/internal/wire"
)

// failSource answers metadata normally but fails every Execute: the
// deterministic stand-in for a component system that is reachable but
// cannot serve data.
type failSource struct {
	name   string
	tables []string
	schema *types.Schema
	err    error
	execs  atomic.Int64
}

func (f *failSource) Name() string                             { return f.name }
func (f *failSource) Capabilities() source.Capabilities        { return source.Capabilities{} }
func (f *failSource) Tables(context.Context) ([]string, error) { return f.tables, nil }
func (f *failSource) TableInfo(_ context.Context, table string) (*source.TableInfo, error) {
	return &source.TableInfo{Schema: f.schema, RowCount: -1}, nil
}
func (f *failSource) Execute(context.Context, *source.Query) (source.RowIter, error) {
	f.execs.Add(1)
	return nil, f.err
}

var eventsSchema = types.NewSchema(
	types.Column{Name: "id", Type: types.KindInt},
	types.Column{Name: "val", Type: types.KindFloat},
)

// newDegradedUnion maps "events" over one healthy relstore fragment and
// one failing fragment.
func newDegradedUnion(t *testing.T, policy *resilience.Policy, partial bool) (*Engine, *failSource) {
	t.Helper()
	e := New()
	if policy != nil {
		if err := e.Catalog().SetResilience(policy); err != nil {
			t.Fatal(err)
		}
	}
	e.SetPartialResults(partial)
	ok := relstore.New("okstore")
	if err := ok.CreateTable("events", eventsSchema, 0); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, ok, "events", []types.Row{
		{types.NewInt(1), types.NewFloat(1)},
		{types.NewInt(2), types.NewFloat(2)},
		{types.NewInt(3), types.NewFloat(3)},
	})
	bad := &failSource{name: "bad", tables: []string{"events"}, schema: eventsSchema, err: errors.New("source down")}
	cat := e.Catalog()
	for _, src := range []source.Source{ok, bad} {
		if err := cat.AddSource(src); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.DefineTable("events", eventsSchema); err != nil {
		t.Fatal(err)
	}
	cols := []catalog.ColumnMapping{{RemoteCol: 0}, {RemoteCol: 1}}
	for _, src := range []string{"okstore", "bad"} {
		if err := cat.MapFragment(ctx, "events", &catalog.Fragment{
			Source: src, RemoteTable: "events", Columns: cols,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return e, bad
}

// TestPartialResultUnion pins the degradation contract without any
// randomness: a failed non-essential union branch yields the healthy
// branch's rows plus a typed PartialResultError naming the lost source.
func TestPartialResultUnion(t *testing.T) {
	for _, parallel := range []bool{true, false} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			e, _ := newDegradedUnion(t, nil, true)
			e.PlanOptions().ParallelFragments = parallel
			res, err := e.Query(ctx, "SELECT id FROM events")
			if err != nil {
				t.Fatalf("degradable query failed hard: %v", err)
			}
			if len(res.Rows) != 3 {
				t.Errorf("rows = %d, want 3 from the healthy fragment", len(res.Rows))
			}
			if res.Partial == nil {
				t.Fatal("Result.Partial not set for a degraded query")
			}
			failed := res.Partial.Failed()
			if len(failed) != 1 || failed[0].Source != "bad" || failed[0].Op != "union" {
				t.Errorf("Failed = %+v, want one union failure on source bad", failed)
			}
			if res.Partial.AllFailed() {
				t.Error("AllFailed despite a healthy branch")
			}
		})
	}
}

// TestPartialResultDisabledFailsHard: without opt-in, one dead fragment
// fails the whole query — degradation must never be silent default.
func TestPartialResultDisabledFailsHard(t *testing.T) {
	e, _ := newDegradedUnion(t, nil, false)
	if _, err := e.Query(ctx, "SELECT id FROM events"); err == nil {
		t.Fatal("query succeeded although degradation is disabled")
	}
}

// TestPartialResultAllFailed: when every union branch is lost there is
// no result to degrade to — the typed error becomes the query's error.
func TestPartialResultAllFailed(t *testing.T) {
	e := New()
	e.SetPartialResults(true)
	cat := e.Catalog()
	cols := []catalog.ColumnMapping{{RemoteCol: 0}, {RemoteCol: 1}}
	if err := cat.DefineTable("events", eventsSchema); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bad1", "bad2"} {
		bad := &failSource{name: name, tables: []string{"events"}, schema: eventsSchema, err: errors.New("down")}
		if err := cat.AddSource(bad); err != nil {
			t.Fatal(err)
		}
		if err := cat.MapFragment(ctx, "events", &catalog.Fragment{
			Source: name, RemoteTable: "events", Columns: cols,
		}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := e.Query(ctx, "SELECT id FROM events")
	var pre *resilience.PartialResultError
	if !errors.As(err, &pre) {
		t.Fatalf("err = %v, want *PartialResultError when every branch failed", err)
	}
	if !pre.AllFailed() {
		t.Error("surfaced error does not report AllFailed")
	}
}

// TestChaosBreakerShedsLoad is the acceptance criterion for the
// breaker: once a source trips it, further queries are shed without
// touching the source, visible in the obs short-circuit counter.
func TestChaosBreakerShedsLoad(t *testing.T) {
	p := &resilience.Policy{MaxRetries: 0, BreakerThreshold: 2, BreakerCooldown: time.Hour}
	e := New()
	if err := e.Catalog().SetResilience(p); err != nil {
		t.Fatal(err)
	}
	bad := &failSource{name: "bad", tables: []string{"events"}, schema: eventsSchema, err: errors.New("down")}
	cat := e.Catalog()
	if err := cat.AddSource(bad); err != nil {
		t.Fatal(err)
	}
	if err := cat.DefineTable("events", eventsSchema); err != nil {
		t.Fatal(err)
	}
	if err := cat.MapFragment(ctx, "events", &catalog.Fragment{
		Source: "bad", RemoteTable: "events",
		Columns: []catalog.ColumnMapping{{RemoteCol: 0}, {RemoteCol: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	short := obs.Default().Counter("resilience.breaker.short_circuits")
	base := short.Value()
	for i := 0; i < 8; i++ {
		if _, err := e.Query(ctx, "SELECT id FROM events"); err == nil {
			t.Fatal("query against a dead source succeeded")
		}
	}
	if n := bad.execs.Load(); n != 2 {
		t.Errorf("source saw %d Execute calls, want 2: the open breaker must shed the rest", n)
	}
	if d := short.Value() - base; d < 6 {
		t.Errorf("short-circuit counter rose by %d, want >= 6 shed calls", d)
	}
	if e.Catalog().Health().Healthy("bad") {
		t.Error("health tracker still reports the tripped source healthy")
	}
}

// ---- seeded chaos over the wire ----

var chaosOrderSchema = types.NewSchema(
	types.Column{Name: "oid", Type: types.KindInt},
	types.Column{Name: "cust_id", Type: types.KindInt},
)

// newWireChaosEngine builds a two-site federation over real wire
// connections with client-side fault injection: customers local,
// orders partitioned across "ny" and "eu".
func newWireChaosEngine(t *testing.T, planSpec string, policy *resilience.Policy, partial bool) *Engine {
	t.Helper()
	var fp *faults.Plan
	if planSpec != "" {
		var err error
		if fp, err = faults.ParsePlan(planSpec); err != nil {
			t.Fatal(err)
		}
	}
	e := New()
	if policy != nil {
		if err := e.Catalog().SetResilience(policy); err != nil {
			t.Fatal(err)
		}
	}
	e.SetPartialResults(partial)

	local := relstore.New("local")
	if err := local.CreateTable("customers", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "name", Type: types.KindString},
	), 0); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, local, "customers", []types.Row{
		{types.NewInt(1), types.NewString("alice")},
		{types.NewInt(2), types.NewString("bob")},
		{types.NewInt(3), types.NewString("carol")},
		{types.NewInt(4), types.NewString("dave")},
	})

	serve := func(name string, rows []types.Row) source.Source {
		st := relstore.New(name + "store")
		if err := st.CreateTable("orders", chaosOrderSchema, 0); err != nil {
			t.Fatal(err)
		}
		mustInsert(t, st, "orders", rows)
		srv, err := wire.Serve(context.Background(), "127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		cl, err := wire.DialContext(ctx, srv.Addr(), wire.WithName(name), wire.WithFaultPlan(fp))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	ny := serve("ny", []types.Row{
		{types.NewInt(10), types.NewInt(1)},
		{types.NewInt(11), types.NewInt(2)},
		{types.NewInt(12), types.NewInt(1)},
	})
	eu := serve("eu", []types.Row{
		{types.NewInt(100), types.NewInt(3)},
		{types.NewInt(101), types.NewInt(4)},
		{types.NewInt(102), types.NewInt(3)},
	})

	cat := e.Catalog()
	for _, src := range []source.Source{local, ny, eu} {
		if err := cat.AddSource(src); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.DefineTable("customers", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "name", Type: types.KindString},
	)); err != nil {
		t.Fatal(err)
	}
	if err := cat.MapSimple(ctx, "customers", "local", "customers"); err != nil {
		t.Fatal(err)
	}
	if err := cat.DefineTable("orders", chaosOrderSchema); err != nil {
		t.Fatal(err)
	}
	cols := []catalog.ColumnMapping{{RemoteCol: 0}, {RemoteCol: 1}}
	if err := cat.MapFragment(ctx, "orders", &catalog.Fragment{
		Source: "ny", RemoteTable: "orders", Columns: cols,
		Where: expr.NewBinary(expr.OpLt, expr.NewColRef("", "oid"), expr.NewConst(types.NewInt(100))),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.MapFragment(ctx, "orders", &catalog.Fragment{
		Source: "eu", RemoteTable: "orders", Columns: cols,
		Where: expr.NewBinary(expr.OpGe, expr.NewColRef("", "oid"), expr.NewConst(types.NewInt(100))),
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// chaosPolicy retries fast so seeded transient faults mostly heal.
func chaosPolicy() *resilience.Policy {
	return &resilience.Policy{
		CallTimeout: 2 * time.Second,
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	}
}

// runChaosQueries drives q from several workers; every execution must
// succeed fully, degrade with a typed partial verdict, or fail cleanly
// before the deadline.
func runChaosQueries(t *testing.T, e *Engine, q string, fullRows int, wantOp string) (full, part, failed int64) {
	t.Helper()
	const (
		workers = 4
		iters   = 10
	)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
				res, err := e.Query(qctx, q)
				cancel()
				mu.Lock()
				switch {
				case err != nil:
					failed++
				case res.Partial != nil:
					part++
					for _, o := range res.Partial.Failed() {
						if o.Op != wantOp {
							t.Errorf("degraded op = %q, want %q", o.Op, wantOp)
						}
					}
					if len(res.Rows) > fullRows {
						t.Errorf("partial result has %d rows, more than the full %d", len(res.Rows), fullRows)
					}
				default:
					full++
					if len(res.Rows) != fullRows {
						t.Errorf("full result has %d rows, want %d", len(res.Rows), fullRows)
					}
				}
				mu.Unlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos queries hung")
	}
	return full, part, failed
}

// TestChaosParallelUnion runs the partitioned-union query under a
// seeded fault plan: the eu link drops and errors while ny stays clean.
func TestChaosParallelUnion(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stress test")
	}
	e := newWireChaosEngine(t, "seed=5;eu:err=0.25,drop=0.1,ops=read", chaosPolicy(), true)
	e.PlanOptions().ParallelFragments = true
	full, part, failed := runChaosQueries(t, e, "SELECT oid FROM orders", 6, "union")
	if full+part == 0 {
		t.Error("no query produced rows under injection")
	}
	t.Logf("parallel union: %d full, %d partial, %d failed cleanly", full, part, failed)
}

// TestChaosBindJoin drives the key-shipped bind join under the same
// seeded plan: a lost fragment degrades to the surviving fragment's
// matches, atomically per fragment.
func TestChaosBindJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stress test")
	}
	e := newWireChaosEngine(t, "seed=17;eu:err=0.25,drop=0.1,ops=read", chaosPolicy(), true)
	e.PlanOptions().ForceStrategy = plan.StrategyBind
	q := "SELECT c.name, o.oid FROM customers c JOIN orders o ON c.id = o.cust_id"
	full, part, failed := runChaosQueries(t, e, q, 6, "bind-join")
	if full+part == 0 {
		t.Error("no query produced rows under injection")
	}
	t.Logf("bind join: %d full, %d partial, %d failed cleanly", full, part, failed)
}

// ---- 2PC under faults ----

// newTxnChaosEngine partitions "accounts" across two wire-served
// transactional stores, with planSpec's faults on the client links.
func newTxnChaosEngine(t *testing.T, planSpec string) *Engine {
	t.Helper()
	fp, err := faults.ParsePlan(planSpec)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	if err := e.Catalog().SetResilience(chaosPolicy()); err != nil {
		t.Fatal(err)
	}
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "balance", Type: types.KindFloat},
	)
	cat := e.Catalog()
	for p, name := range []string{"ny", "eu"} {
		st := relstore.New(name + "store")
		if err := st.CreateTable("acct", schema, 0); err != nil {
			t.Fatal(err)
		}
		var rows []types.Row
		for i := 0; i < 4; i++ {
			rows = append(rows, types.Row{types.NewInt(int64(p*4 + i)), types.NewFloat(100)})
		}
		mustInsert(t, st, "acct", rows)
		srv, err := wire.Serve(context.Background(), "127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		cl, err := wire.DialContext(ctx, srv.Addr(), wire.WithName(name), wire.WithFaultPlan(fp))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		if err := cat.AddSource(cl); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.DefineTable("accounts", schema); err != nil {
		t.Fatal(err)
	}
	cols := []catalog.ColumnMapping{{RemoteCol: 0}, {RemoteCol: 1}}
	for p, name := range []string{"ny", "eu"} {
		lo, hi := int64(p*4), int64((p+1)*4)
		if err := cat.MapFragment(ctx, "accounts", &catalog.Fragment{
			Source: name, RemoteTable: "acct", Columns: cols,
			Where: expr.NewBinary(expr.OpAnd,
				expr.NewBinary(expr.OpGe, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(lo))),
				expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(hi)))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func sumBalances(t *testing.T, e *Engine) float64 {
	t.Helper()
	res, err := e.Query(ctx, "SELECT SUM(balance) FROM accounts")
	if err != nil {
		t.Fatalf("balance audit query: %v", err)
	}
	return res.Rows[0][0].Float()
}

// TestChaos2PCPrepareFault: a prepare message that always fails must
// abort the transaction on every participant — the untouched
// participant's writes roll back too, so the global balance is intact.
func TestChaos2PCPrepareFault(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stress test")
	}
	e := newTxnChaosEngine(t, "eu:err=1,ops=prepare")
	if _, err := e.Exec(ctx, "UPDATE accounts SET balance = balance + 1"); err == nil {
		t.Fatal("global update committed although a participant cannot prepare")
	} else if !strings.Contains(err.Error(), "voted abort") {
		t.Errorf("err = %v, want a voted-abort verdict", err)
	}
	if sum := sumBalances(t, e); sum != 800 {
		t.Errorf("balance sum = %v after aborted update, want 800 (atomicity violated)", sum)
	}
}

// TestChaos2PCCommitFault: once the commit decision is logged, a
// participant whose commit acknowledgement keeps failing exhausts
// CommitRetries and is surfaced as in-doubt — the engine must never
// report a clean commit.
func TestChaos2PCCommitFault(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stress test")
	}
	e := newTxnChaosEngine(t, "eu:err=1,ops=commit")
	_, err := e.Exec(ctx, "UPDATE accounts SET balance = balance + 1")
	if err == nil {
		t.Fatal("engine reported a clean commit despite a lost participant acknowledgement")
	}
	if !strings.Contains(err.Error(), "did not acknowledge") || !strings.Contains(err.Error(), "eu") {
		t.Errorf("err = %v, want an in-doubt verdict naming participant eu", err)
	}
}

// TestSetResilienceAfterSources: the policy must cover every source, so
// installing it late is an error.
func TestSetResilienceAfterSources(t *testing.T) {
	e := New()
	st := relstore.New("ny")
	if err := e.Catalog().AddSource(st); err != nil {
		t.Fatal(err)
	}
	if err := e.Catalog().SetResilience(resilience.DefaultPolicy()); err == nil {
		t.Fatal("SetResilience accepted a catalog with registered sources")
	}
}

var _ = fmt.Sprintf // keep fmt available for debugging edits
