package core

import (
	"context"
	"fmt"

	"gis/internal/catalog"
	"gis/internal/expr"
	"gis/internal/obs"
	"gis/internal/source"
	"gis/internal/sql"
	"gis/internal/types"
)

// execStmt routes a write statement.
func (e *Engine) execStmt(ctx context.Context, stmt sql.Statement) (int64, error) {
	var name string
	switch stmt.(type) {
	case *sql.InsertStmt:
		name = "insert"
	case *sql.UpdateStmt:
		name = "update"
	case *sql.DeleteStmt:
		name = "delete"
	default:
		// Non-writes fall through to the dispatch switch's error.
	}
	var span *obs.Span
	if name != "" {
		ctx, span = obs.StartSpan(ctx, obs.SpanWrite, name)
		defer span.End()
	}
	var n int64
	var err error
	switch s := stmt.(type) {
	case *sql.InsertStmt:
		n, err = e.execInsert(ctx, s)
	case *sql.UpdateStmt:
		n, err = e.execUpdate(ctx, s)
	case *sql.DeleteStmt:
		n, err = e.execDelete(ctx, s)
	case *sql.SelectStmt:
		return 0, fmt.Errorf("core: Exec requires a write statement; use Query for SELECT")
	default:
		return 0, fmt.Errorf("core: unsupported statement %T", stmt)
	}
	if err == nil {
		span.SetInt("affected", n)
	}
	return n, err
}

// fragWrite batches the per-fragment work of one global write.
type fragWrite struct {
	frag *catalog.Fragment
	rows []types.Row // inserts (remote representation)
}

// execInsert evaluates the literal rows, routes each to the fragment
// whose partition predicate accepts it, translates to the remote
// representation, and writes — under 2PC when several sources are hit.
func (e *Engine) execInsert(ctx context.Context, ins *sql.InsertStmt) (int64, error) {
	tab, err := e.cat.Table(ins.Table)
	if err != nil {
		return 0, err
	}
	if len(tab.Fragments) == 0 {
		return 0, fmt.Errorf("core: global table %q has no fragments", ins.Table)
	}
	// Resolve the column list.
	colIdx := make([]int, 0, tab.Schema.Len())
	if len(ins.Columns) == 0 {
		for i := 0; i < tab.Schema.Len(); i++ {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range ins.Columns {
			i, err := tab.Schema.IndexOf("", name)
			if err != nil {
				return 0, err
			}
			colIdx = append(colIdx, i)
		}
	}
	writes := map[*catalog.Fragment]*fragWrite{}
	for ri, exprRow := range ins.Rows {
		if len(exprRow) != len(colIdx) {
			return 0, fmt.Errorf("core: INSERT row %d has %d values, expected %d", ri+1, len(exprRow), len(colIdx))
		}
		// Evaluate to a full global row (unnamed columns get NULL).
		global := make(types.Row, tab.Schema.Len())
		for i := range global {
			global[i] = types.Null
		}
		for i, ex := range exprRow {
			bound, err := expr.Bind(ex, &types.Schema{})
			if err != nil {
				return 0, fmt.Errorf("core: INSERT row %d: %w", ri+1, err)
			}
			v, err := bound.Eval(nil)
			if err != nil {
				return 0, fmt.Errorf("core: INSERT row %d: %w", ri+1, err)
			}
			target := tab.Schema.Columns[colIdx[i]]
			if !v.IsNull() && v.Kind() != target.Type {
				v, err = v.Coerce(target.Type)
				if err != nil {
					return 0, fmt.Errorf("core: INSERT row %d column %s: %w", ri+1, target.Name, err)
				}
			}
			global[colIdx[i]] = v
		}
		frag, err := routeRow(tab, global)
		if err != nil {
			return 0, fmt.Errorf("core: INSERT row %d: %w", ri+1, err)
		}
		remote, err := toRemoteRow(frag, tab, global)
		if err != nil {
			return 0, fmt.Errorf("core: INSERT row %d: %w", ri+1, err)
		}
		w := writes[frag]
		if w == nil {
			w = &fragWrite{frag: frag}
			writes[frag] = w
		}
		w.rows = append(w.rows, remote)
	}
	return e.applyWrites(ctx, writes, func(ctx context.Context, w source.Writer, fw *fragWrite) (int64, error) {
		return w.Insert(ctx, fw.frag.RemoteTable, fw.rows)
	})
}

// routeRow picks the single fragment whose partition predicate accepts
// the row. Tables without partition predicates must have exactly one
// fragment to accept inserts.
func routeRow(tab *catalog.GlobalTable, row types.Row) (*catalog.Fragment, error) {
	var match *catalog.Fragment
	anyPredicate := false
	for _, f := range tab.Fragments {
		if f.Where == nil {
			continue
		}
		anyPredicate = true
		ok, err := expr.EvalBool(f.Where, row)
		if err != nil {
			return nil, err
		}
		if ok {
			if match != nil {
				return nil, fmt.Errorf("row matches the partition predicates of both %s.%s and %s.%s",
					match.Source, match.RemoteTable, f.Source, f.RemoteTable)
			}
			match = f
		}
	}
	if match != nil {
		return match, nil
	}
	if anyPredicate {
		return nil, fmt.Errorf("row matches no fragment's partition predicate")
	}
	if len(tab.Fragments) == 1 {
		return tab.Fragments[0], nil
	}
	return nil, fmt.Errorf("table has %d fragments without partition predicates; INSERT target is ambiguous", len(tab.Fragments))
}

// toRemoteRow converts a global row into the fragment's remote layout.
func toRemoteRow(frag *catalog.Fragment, tab *catalog.GlobalTable, global types.Row) (types.Row, error) {
	info := frag.Info()
	remote := make(types.Row, info.Schema.Len())
	for i := range remote {
		remote[i] = types.Null
	}
	for g, m := range frag.Columns {
		gv := global[g]
		if m.Const != nil {
			// Constant-mapped columns are not stored; reject values that
			// contradict the mapping (they would silently change on
			// read-back).
			if !gv.IsNull() && !gv.Equal(*m.Const) {
				return nil, fmt.Errorf("column %s is fixed to %s by the fragment mapping; cannot store %s",
					tab.Schema.Columns[g].Name, m.Const.String(), gv.String())
			}
			continue
		}
		if m.RemoteCol < 0 {
			continue
		}
		if gv.IsNull() {
			continue
		}
		rv, ok := m.ToRemote(gv)
		if !ok {
			return nil, fmt.Errorf("column %s: value %s is not representable at %s.%s",
				tab.Schema.Columns[g].Name, gv.String(), frag.Source, frag.RemoteTable)
		}
		// Coerce to the remote column type.
		rt := info.Schema.Columns[m.RemoteCol].Type
		if !rv.IsNull() && rv.Kind() != rt {
			var err error
			rv, err = rv.Coerce(rt)
			if err != nil {
				return nil, fmt.Errorf("column %s: %w", tab.Schema.Columns[g].Name, err)
			}
		}
		remote[m.RemoteCol] = rv
	}
	return remote, nil
}

// execUpdate translates the statement per fragment and applies it.
func (e *Engine) execUpdate(ctx context.Context, upd *sql.UpdateStmt) (int64, error) {
	tab, err := e.cat.Table(upd.Table)
	if err != nil {
		return 0, err
	}
	filter, err := e.bindWriteFilter(ctx, upd.Where, tab)
	if err != nil {
		return 0, err
	}
	// Bind SET values over the global schema.
	type setClause struct {
		col   int
		value expr.Expr
	}
	sets := make([]setClause, len(upd.Set))
	for i, a := range upd.Set {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		col, err := tab.Schema.IndexOf("", a.Column)
		if err != nil {
			return 0, err
		}
		bound, err := expr.Bind(a.Value, tab.Schema)
		if err != nil {
			return 0, err
		}
		bound, err = e.substituteSubqueries(ctx, bound)
		if err != nil {
			return 0, err
		}
		sets[i] = setClause{col: col, value: expr.FoldConstants(bound)}
	}

	writes := map[*catalog.Fragment]*fragWrite{}
	translated := map[*catalog.Fragment]struct {
		filter expr.Expr
		set    []source.SetClause
	}{}
	for _, frag := range tab.Fragments {
		if frag.PruneByPartition(filter) {
			continue
		}
		remoteFilter, residual := frag.SplitFilter(filter)
		if residual != nil {
			return 0, fmt.Errorf("core: UPDATE predicate %s is not expressible at %s.%s",
				residual, frag.Source, frag.RemoteTable)
		}
		rset := make([]source.SetClause, len(sets))
		for i, sc := range sets {
			m := frag.Columns[sc.col]
			if m.Const != nil {
				return 0, fmt.Errorf("core: column %s is constant-mapped at %s.%s and cannot be updated",
					tab.Schema.Columns[sc.col].Name, frag.Source, frag.RemoteTable)
			}
			rv, ok := frag.TranslateValue(sc.value, sc.col)
			if !ok {
				return 0, fmt.Errorf("core: UPDATE value %s is not translatable for %s.%s",
					sc.value, frag.Source, frag.RemoteTable)
			}
			rset[i] = source.SetClause{Col: m.RemoteCol, Value: rv}
		}
		writes[frag] = &fragWrite{frag: frag}
		translated[frag] = struct {
			filter expr.Expr
			set    []source.SetClause
		}{remoteFilter, rset}
	}
	return e.applyWrites(ctx, writes, func(ctx context.Context, w source.Writer, fw *fragWrite) (int64, error) {
		t := translated[fw.frag]
		return w.Update(ctx, fw.frag.RemoteTable, t.filter, t.set)
	})
}

// execDelete translates the statement per fragment and applies it.
func (e *Engine) execDelete(ctx context.Context, del *sql.DeleteStmt) (int64, error) {
	tab, err := e.cat.Table(del.Table)
	if err != nil {
		return 0, err
	}
	filter, err := e.bindWriteFilter(ctx, del.Where, tab)
	if err != nil {
		return 0, err
	}
	writes := map[*catalog.Fragment]*fragWrite{}
	filters := map[*catalog.Fragment]expr.Expr{}
	for _, frag := range tab.Fragments {
		if frag.PruneByPartition(filter) {
			continue
		}
		remoteFilter, residual := frag.SplitFilter(filter)
		if residual != nil {
			return 0, fmt.Errorf("core: DELETE predicate %s is not expressible at %s.%s",
				residual, frag.Source, frag.RemoteTable)
		}
		writes[frag] = &fragWrite{frag: frag}
		filters[frag] = remoteFilter
	}
	return e.applyWrites(ctx, writes, func(ctx context.Context, w source.Writer, fw *fragWrite) (int64, error) {
		return w.Delete(ctx, fw.frag.RemoteTable, filters[fw.frag])
	})
}

// bindWriteFilter binds (and de-subqueries) a write statement's WHERE.
func (e *Engine) bindWriteFilter(ctx context.Context, where expr.Expr, tab *catalog.GlobalTable) (expr.Expr, error) {
	if where == nil {
		return nil, nil
	}
	bound, err := expr.Bind(where, tab.Schema)
	if err != nil {
		return nil, err
	}
	bound, err = e.substituteSubqueries(ctx, bound)
	if err != nil {
		return nil, err
	}
	return expr.FoldConstants(bound), nil
}

// applyWrites drives the per-fragment writes: direct autocommit for a
// single source, two-phase commit across several.
func (e *Engine) applyWrites(ctx context.Context, writes map[*catalog.Fragment]*fragWrite,
	apply func(context.Context, source.Writer, *fragWrite) (int64, error)) (int64, error) {

	if len(writes) == 0 {
		return 0, nil
	}
	// Group by source (several fragments can live on one source).
	bySource := map[string][]*fragWrite{}
	for _, fw := range writes {
		bySource[fw.frag.Source] = append(bySource[fw.frag.Source], fw)
	}

	if len(bySource) == 1 {
		// Single participant: autocommit through the source's writer.
		var total int64
		for name, fws := range bySource {
			src, err := e.cat.Source(name)
			if err != nil {
				return 0, err
			}
			w, ok := src.(source.Writer)
			if !ok {
				return 0, fmt.Errorf("core: source %s is not writable", name)
			}
			for _, fw := range fws {
				n, err := apply(ctx, w, fw)
				total += n
				if err != nil {
					return total, err
				}
			}
		}
		return total, nil
	}

	// Multiple participants: two-phase commit.
	g := e.coord.Begin()
	var total int64
	for name, fws := range bySource {
		if err := ctx.Err(); err != nil {
			_ = g.Abort(ctx) // best-effort rollback; the original error wins
			return 0, err
		}
		src, err := e.cat.Source(name)
		if err != nil {
			_ = g.Abort(ctx) // best-effort rollback; the original error wins
			return 0, err
		}
		t, ok := src.(source.Transactional)
		if !ok {
			_ = g.Abort(ctx) // best-effort rollback; the original error wins
			return 0, fmt.Errorf("core: source %s cannot participate in a multi-source write (no transaction support)", name)
		}
		tx, err := t.BeginTx(ctx)
		if err != nil {
			_ = g.Abort(ctx) // best-effort rollback; the original error wins
			return 0, err
		}
		if err := g.Enlist(name, tx); err != nil {
			_ = tx.Abort(ctx) // best-effort rollback; the original error wins
			_ = g.Abort(ctx)  // best-effort rollback; the original error wins
			return 0, err
		}
		for _, fw := range fws {
			if err := ctx.Err(); err != nil {
				_ = g.Abort(ctx) // best-effort rollback; the original error wins
				return 0, err
			}
			n, err := apply(ctx, tx, fw)
			total += n
			if err != nil {
				_ = g.Abort(ctx) // best-effort rollback; the original error wins
				return 0, err
			}
		}
	}
	if err := g.Commit(ctx); err != nil {
		return 0, err
	}
	return total, nil
}
