package core

import (
	"context"
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"gis/internal/catalog"
	"gis/internal/obs"
	"gis/internal/plan"
	"gis/internal/relstore"
	"gis/internal/source"
	"gis/internal/types"
	"gis/internal/wire"
)

// traceFederation builds a two-site wire federation: site <a> holds
// cust(id, name), site <b> holds ord(oid, cust_id, amount), and a third
// federated table "acct" is range-partitioned across both sites so 2PC
// writes have two participants. Source names are caller-chosen so each
// test reads its own wire.client.<name>.* counters.
func traceFederation(t *testing.T, a, b string) *Engine {
	t.Helper()
	mk := func(name string) (*relstore.Store, *wire.Server) {
		st := relstore.New(name)
		srv, err := wire.Serve(context.Background(), "127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return st, srv
	}
	stA, srvA := mk(a)
	stB, srvB := mk(b)

	if err := stA.CreateTable("cust", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "name", Type: types.KindString},
	), 0); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, stA, "cust", []types.Row{
		{types.NewInt(1), types.NewString("alice")},
		{types.NewInt(2), types.NewString("bob")},
	})
	if err := stB.CreateTable("ord", types.NewSchema(
		types.Column{Name: "oid", Type: types.KindInt},
		types.Column{Name: "cust_id", Type: types.KindInt},
		types.Column{Name: "amount", Type: types.KindFloat},
	), 0); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, stB, "ord", []types.Row{
		{types.NewInt(10), types.NewInt(1), types.NewFloat(5)},
		{types.NewInt(11), types.NewInt(2), types.NewFloat(7)},
		{types.NewInt(12), types.NewInt(1), types.NewFloat(9)},
	})
	acctSchema := types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "balance", Type: types.KindFloat},
	)
	for st, base := range map[*relstore.Store]int64{stA: 0, stB: 100} {
		if err := st.CreateTable("acct", acctSchema, 0); err != nil {
			t.Fatal(err)
		}
		mustInsert(t, st, "acct", []types.Row{
			{types.NewInt(base + 1), types.NewFloat(50)},
			{types.NewInt(base + 2), types.NewFloat(60)},
		})
	}

	cfg := fmt.Sprintf(`{
	  "sources": [
	    {"name": "%s", "addr": "%s"},
	    {"name": "%s", "addr": "%s"}
	  ],
	  "tables": [
	    {"name": "cust",
	     "columns": [{"name": "id", "type": "int"}, {"name": "name", "type": "string"}],
	     "fragments": [{"source": "%s", "remote_table": "cust",
	       "columns": [{"remote_col": 0}, {"remote_col": 1}]}]},
	    {"name": "ord",
	     "columns": [{"name": "oid", "type": "int"}, {"name": "cust_id", "type": "int"},
	                 {"name": "amount", "type": "float"}],
	     "fragments": [{"source": "%s", "remote_table": "ord",
	       "columns": [{"remote_col": 0}, {"remote_col": 1}, {"remote_col": 2}]}]},
	    {"name": "acct",
	     "columns": [{"name": "id", "type": "int"}, {"name": "balance", "type": "float"}],
	     "fragments": [
	       {"source": "%s", "remote_table": "acct",
	        "columns": [{"remote_col": 0}, {"remote_col": 1}], "where": "id < 100"},
	       {"source": "%s", "remote_table": "acct",
	        "columns": [{"remote_col": 0}, {"remote_col": 1}], "where": "id >= 100"}
	     ]}
	  ]
	}`, a, srvA.Addr(), b, srvB.Addr(), a, b, a, b)

	e := New()
	var clients []*wire.Client
	dial := func(ctx context.Context, sc catalog.SourceConfig) (source.Source, error) {
		cl, err := wire.DialContext(ctx, sc.Addr, wire.WithName(sc.Name))
		if err == nil {
			clients = append(clients, cl)
		}
		return cl, err
	}
	if err := e.ApplyConfig(context.Background(), []byte(cfg), dial); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, cl := range clients {
			cl.Close()
		}
	})
	e.SetTracing(true)
	return e
}

// TestTraceFederatedJoin runs a two-source join under tracing and checks
// the span tree: pipeline phases, one ship span per source with SQL,
// row, and byte attributes, and nonzero wire metrics for both links.
func TestTraceFederatedJoin(t *testing.T) {
	e := traceFederation(t, "trjA", "trjB")

	res := query(t, e,
		"SELECT c.name, SUM(o.amount) FROM cust c JOIN ord o ON c.id = o.cust_id GROUP BY c.name")
	if len(res.Rows) != 2 {
		t.Fatalf("join returned %d rows, want 2", len(res.Rows))
	}

	tr := e.TraceLast()
	if tr == nil {
		t.Fatal("TraceLast() = nil after traced query")
	}
	root := tr.Root()
	if root.Kind() != obs.SpanQuery {
		t.Errorf("root kind = %v, want query", root.Kind())
	}
	for _, kind := range []obs.SpanKind{
		obs.SpanParse, obs.SpanResolve, obs.SpanOptimize, obs.SpanDecompose, obs.SpanExec,
	} {
		if len(tr.FindAll(kind)) == 0 {
			t.Errorf("no %v span in trace:\n%s", kind, tr.Tree())
		}
	}

	ships := tr.FindAll(obs.SpanShip)
	if len(ships) < 2 {
		t.Fatalf("want >= 2 ship spans (one per source), got %d:\n%s", len(ships), tr.Tree())
	}
	bySource := map[string]bool{}
	for _, sp := range ships {
		src, ok := sp.Attr("source")
		if !ok {
			t.Fatalf("ship span %q lacks source attr", sp.Name())
		}
		bySource[src] = true
		// The shipped query renders in the source query language
		// ("scan <table> where ... cols[...]"), showing pushed work.
		if sql, ok := sp.Attr("sql"); !ok || !strings.HasPrefix(sql, "scan ") {
			t.Errorf("ship span for %s: sql attr = %q", src, sql)
		}
		rows, ok := sp.Attr("rows")
		if !ok {
			t.Fatalf("ship span for %s lacks rows attr", src)
		}
		if n, err := strconv.Atoi(rows); err != nil || n <= 0 {
			t.Errorf("ship span for %s: rows = %q, want positive int", src, rows)
		}
		if bts, ok := sp.Attr("bytes"); !ok || bts == "0" {
			t.Errorf("ship span for %s: bytes = %q, want nonzero", src, bts)
		}
	}
	if !bySource["trjA"] || !bySource["trjB"] {
		t.Errorf("ship spans cover sources %v, want both trjA and trjB", bySource)
	}
	if len(tr.FindAll(obs.SpanFetch)) < 2 {
		t.Errorf("want >= 2 fetch spans, got %d", len(tr.FindAll(obs.SpanFetch)))
	}

	// The JSON form round-trips to the same shape.
	js, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var data struct {
		Name string        `json:"name"`
		Root *obs.SpanData `json:"root"`
	}
	if err := json.Unmarshal(js, &data); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if data.Root == nil || data.Root.Kind != obs.SpanQuery.String() || len(data.Root.Children) == 0 {
		t.Errorf("JSON root = %+v, want query kind with children", data.Root)
	}

	// Both wire links recorded traffic.
	snap := obs.Default().Snapshot()
	for _, name := range []string{"trjA", "trjB"} {
		for _, c := range []string{"frames_out", "frames_in", "bytes_out", "bytes_in"} {
			key := "wire.client." + name + "." + c
			if snap.Counters[key] <= 0 {
				t.Errorf("counter %s = %d, want > 0", key, snap.Counters[key])
			}
		}
		h := snap.Histograms["wire.client."+name+".rtt_seconds"]
		if h.Count <= 0 {
			t.Errorf("rtt histogram for %s empty", name)
		}
	}
}

// TestTrace2PCUpdate runs a cross-partition UPDATE and checks the write
// and two-phase-commit span shape: a write span, a 2pc commit span with
// the participant count and outcome, and per-participant prepare and
// commit children covering both sites.
func TestTrace2PCUpdate(t *testing.T) {
	e := traceFederation(t, "tr2A", "tr2B")

	n, err := e.Exec(ctx, "UPDATE acct SET balance = balance + 1 WHERE id = 1 OR id = 101")
	if err != nil || n != 2 {
		t.Fatalf("cross-site update = %d, %v; want 2", n, err)
	}

	tr := e.TraceLast()
	if tr == nil {
		t.Fatal("TraceLast() = nil after traced update")
	}
	writes := tr.FindAll(obs.SpanWrite)
	if len(writes) != 1 || writes[0].Name() != "update" {
		t.Fatalf("write spans = %v, want one named update:\n%s", len(writes), tr.Tree())
	}
	if aff, _ := writes[0].Attr("affected"); aff != "2" {
		t.Errorf("write span affected = %q, want 2", aff)
	}

	var twopc *obs.Span
	for _, sp := range tr.FindAll(obs.SpanCommit) {
		if strings.HasPrefix(sp.Name(), "2pc ") {
			twopc = sp
			break
		}
	}
	if twopc == nil {
		t.Fatalf("no 2pc commit span:\n%s", tr.Tree())
	}
	if p, _ := twopc.Attr("participants"); p != "2" {
		t.Errorf("2pc participants = %q, want 2", p)
	}
	if out, _ := twopc.Attr("outcome"); out != "committed" {
		t.Errorf("2pc outcome = %q, want committed", out)
	}

	prepared := map[string]bool{}
	for _, sp := range tr.FindAll(obs.SpanPrepare) {
		prepared[sp.Name()] = true
	}
	if !prepared["tr2A"] || !prepared["tr2B"] {
		t.Errorf("prepare spans cover %v, want both tr2A and tr2B:\n%s", prepared, tr.Tree())
	}
	commits := 0
	for _, sp := range twopc.Children() {
		if sp.Kind() == obs.SpanCommit {
			commits++
		}
	}
	if commits != 2 {
		t.Errorf("2pc span has %d commit children, want 2:\n%s", commits, tr.Tree())
	}
}

// TestExplainAnalyzeParallelUnion checks that per-operator row counts
// stay correct when fragment scans run concurrently: the fragment rows
// must sum to the table's cardinality with no double or lost counts.
// check.sh runs this under the race detector.
func TestExplainAnalyzeParallelUnion(t *testing.T) {
	e := newTestEngine(t)
	e.PlanOptions().ParallelFragments = true

	out, err := e.ExplainAnalyze(ctx, "SELECT oid, qty FROM orders WHERE qty >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FragScan ny.orders") || !strings.Contains(out, "FragScan eu.orders") {
		t.Fatalf("expected both fragments in plan:\n%s", out)
	}
	re := regexp.MustCompile(`FragScan \S+ .*\(rows=(\d+)`)
	sum := 0
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatal(err)
		}
		sum += n
	}
	if sum != 6 {
		t.Errorf("fragment rows sum to %d, want 6:\n%s", sum, out)
	}
	if !strings.Contains(out, "total: 6 row(s)") {
		t.Errorf("missing total:\n%s", out)
	}
}

// TestTracingOffByDefault guards the cheap-disabled-path contract: a
// fresh engine records no trace until SetTracing(true).
func TestTracingOffByDefault(t *testing.T) {
	e := newTestEngine(t)
	query(t, e, "SELECT COUNT(*) FROM customers")
	if tr := e.TraceLast(); tr != nil {
		t.Fatalf("TraceLast() = %v with tracing off, want nil", tr.Name())
	}
	e.SetTracing(true)
	query(t, e, "SELECT COUNT(*) FROM customers")
	if e.TraceLast() == nil {
		t.Fatal("TraceLast() = nil with tracing on")
	}
}

// TestQueryLogRecordsSlowQueries exercises the engine-level query log:
// with a zero threshold every statement lands in the slow ring.
func TestQueryLogRecordsSlowQueries(t *testing.T) {
	e := newTestEngine(t)
	e.Queries().SetThreshold(0)
	query(t, e, "SELECT COUNT(*) FROM customers")
	slow := e.Queries().Slow()
	if len(slow) == 0 {
		t.Fatal("no slow queries recorded at zero threshold")
	}
	if !strings.Contains(slow[0].SQL, "COUNT(*)") {
		t.Errorf("slow[0].SQL = %q", slow[0].SQL)
	}
	if d := time.Duration(slow[0].DurationMS * float64(time.Millisecond)); d < 0 {
		t.Errorf("negative duration %v", d)
	}
	if len(e.Queries().Active()) != 0 {
		t.Errorf("active queries = %v after completion, want none", e.Queries().Active())
	}
}

// TestTraceFederationWideStitch checks the full distributed-tracing
// path through the engine: every ship span of a traced federated join
// carries a stitched SpanRemote subtree (the component system's
// parse/exec/stream spans returned in the wire trailer), the
// remote-vs-WAN split, and nothing was counted lost.
func TestTraceFederationWideStitch(t *testing.T) {
	e := traceFederation(t, "stitchA", "stitchB")
	lost := obs.Default().Counter("obs.trace.remote_lost").Value()

	query(t, e,
		"SELECT c.name, SUM(o.amount) FROM cust c JOIN ord o ON c.id = o.cust_id GROUP BY c.name")

	tr := e.TraceLast()
	if tr == nil {
		t.Fatal("TraceLast() = nil")
	}
	ships := tr.FindAll(obs.SpanShip)
	if len(ships) < 2 {
		t.Fatalf("ship spans = %d, want >= 2:\n%s", len(ships), tr.Tree())
	}
	for _, sh := range ships {
		src, _ := sh.Attr("source")
		var remote *obs.Span
		for _, c := range sh.Children() {
			if c.Kind() == obs.SpanRemote {
				remote = c
			}
		}
		if remote == nil {
			t.Fatalf("ship span for %s has no stitched remote subtree:\n%s", src, tr.Tree())
		}
		kinds := map[obs.SpanKind]bool{}
		for _, c := range remote.Children() {
			kinds[c.Kind()] = true
		}
		for _, want := range []obs.SpanKind{obs.SpanParse, obs.SpanExec, obs.SpanStream} {
			if !kinds[want] {
				t.Errorf("remote subtree for %s missing %v span:\n%s", src, want, tr.Tree())
			}
		}
		if _, ok := sh.Attr("remote_us"); !ok {
			t.Errorf("ship span for %s lacks remote_us", src)
		}
		if _, ok := sh.Attr("wan_us"); !ok {
			t.Errorf("ship span for %s lacks wan_us", src)
		}
	}
	if got := obs.Default().Counter("obs.trace.remote_lost").Value() - lost; got != 0 {
		t.Errorf("remote_lost advanced by %d on a healthy federation", got)
	}
}

// TestPlanFeedbackFromFederatedQuery checks the always-on
// estimate-vs-actual path: after a federated join, the process-wide
// feedback store holds fragment-scan entries keyed by source.table.
func TestPlanFeedbackFromFederatedQuery(t *testing.T) {
	e := traceFederation(t, "fbA", "fbB")
	// Ship-all keeps both fragment scans unaugmented: semijoin/bind
	// rewrite the inner scan's predicate, which (by design) suppresses
	// its feedback entry because the estimate no longer matches.
	e.PlanOptions().ForceStrategy = plan.StrategyShipAll
	obs.DefaultFeedback().Reset()
	t.Cleanup(obs.DefaultFeedback().Reset)

	query(t, e,
		"SELECT c.name FROM cust c JOIN ord o ON c.id = o.cust_id WHERE o.amount > 1")

	snap := obs.DefaultFeedback().Snapshot()
	if len(snap) == 0 {
		t.Fatal("no plan-feedback entries after a federated query")
	}
	scopes := map[string]bool{}
	for _, en := range snap {
		scopes[en.Scope] = true
		if en.Count <= 0 {
			t.Errorf("entry %s/%s has count %d", en.Scope, en.Fingerprint, en.Count)
		}
		if en.MaxQErr < 1 {
			t.Errorf("entry %s q-error %v < 1", en.Scope, en.MaxQErr)
		}
	}
	if !scopes["frag:fbA.cust"] || !scopes["frag:fbB.ord"] {
		t.Errorf("feedback scopes = %v, want both fragment scans", scopes)
	}
}
