package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"gis/internal/catalog"
	"gis/internal/expr"
	"gis/internal/filestore"
	"gis/internal/kvstore"
	"gis/internal/relstore"
	"gis/internal/types"
)

var ctx = context.Background()

// newTestEngine builds a small federation:
//
//	customers  — relstore "ny" (4 rows)
//	orders     — horizontally partitioned: ids < 100 on "ny",
//	             ids >= 100 on "eu" (relstores, 6 rows total)
//	products   — kvstore "kv" keyed by sku (4 rows; keyed access only)
//	suppliers  — filestore "files" CSV (3 rows; scan-only)
func newTestEngine(t testing.TB) *Engine {
	t.Helper()
	e := New()

	ny := relstore.New("ny")
	if err := ny.CreateTable("customers", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "name", Type: types.KindString},
		types.Column{Name: "region", Type: types.KindString},
		types.Column{Name: "balance", Type: types.KindFloat},
	), 0); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, ny, "customers", []types.Row{
		{types.NewInt(1), types.NewString("alice"), types.NewString("east"), types.NewFloat(100)},
		{types.NewInt(2), types.NewString("bob"), types.NewString("west"), types.NewFloat(200)},
		{types.NewInt(3), types.NewString("carol"), types.NewString("east"), types.NewFloat(300)},
		{types.NewInt(4), types.NewString("dave"), types.NewString("west"), types.NewFloat(50)},
	})

	orderSchema := types.NewSchema(
		types.Column{Name: "oid", Type: types.KindInt},
		types.Column{Name: "cust_id", Type: types.KindInt},
		types.Column{Name: "sku", Type: types.KindInt},
		types.Column{Name: "qty", Type: types.KindInt},
	)
	if err := ny.CreateTable("orders", orderSchema, 0); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, ny, "orders", []types.Row{
		{types.NewInt(10), types.NewInt(1), types.NewInt(501), types.NewInt(2)},
		{types.NewInt(11), types.NewInt(2), types.NewInt(502), types.NewInt(1)},
		{types.NewInt(12), types.NewInt(1), types.NewInt(503), types.NewInt(5)},
	})

	eu := relstore.New("eu")
	if err := eu.CreateTable("orders", orderSchema, 0); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, eu, "orders", []types.Row{
		{types.NewInt(100), types.NewInt(3), types.NewInt(501), types.NewInt(7)},
		{types.NewInt(101), types.NewInt(4), types.NewInt(502), types.NewInt(3)},
		{types.NewInt(102), types.NewInt(3), types.NewInt(504), types.NewInt(1)},
	})

	kv := kvstore.New("kv")
	if err := kv.CreateBucket("products", types.NewSchema(
		types.Column{Name: "sku", Type: types.KindInt},
		types.Column{Name: "pname", Type: types.KindString},
		types.Column{Name: "price", Type: types.KindFloat},
	), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Insert(ctx, "products", []types.Row{
		{types.NewInt(501), types.NewString("widget"), types.NewFloat(9.5)},
		{types.NewInt(502), types.NewString("gadget"), types.NewFloat(20)},
		{types.NewInt(503), types.NewString("sprocket"), types.NewFloat(1.25)},
		{types.NewInt(504), types.NewString("gizmo"), types.NewFloat(99)},
	}); err != nil {
		t.Fatal(err)
	}

	files := filestore.New("files")
	if err := files.RegisterData("suppliers",
		"1,acme,east\n2,globex,west\n3,initech,east\n",
		types.NewSchema(
			types.Column{Name: "sid", Type: types.KindInt},
			types.Column{Name: "sname", Type: types.KindString},
			types.Column{Name: "sregion", Type: types.KindString},
		)); err != nil {
		t.Fatal(err)
	}

	cat := e.Catalog()
	for _, src := range []interface {
		Name() string
	}{ny, eu, kv, files} {
		_ = src
	}
	if err := cat.AddSource(ny); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddSource(eu); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddSource(kv); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddSource(files); err != nil {
		t.Fatal(err)
	}

	if err := cat.DefineTable("customers", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "name", Type: types.KindString},
		types.Column{Name: "region", Type: types.KindString},
		types.Column{Name: "balance", Type: types.KindFloat},
	)); err != nil {
		t.Fatal(err)
	}
	if err := cat.MapSimple(context.Background(), "customers", "ny", "customers"); err != nil {
		t.Fatal(err)
	}

	if err := cat.DefineTable("orders", types.NewSchema(
		types.Column{Name: "oid", Type: types.KindInt},
		types.Column{Name: "cust_id", Type: types.KindInt},
		types.Column{Name: "sku", Type: types.KindInt},
		types.Column{Name: "qty", Type: types.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	idCols := []catalog.ColumnMapping{{RemoteCol: 0}, {RemoteCol: 1}, {RemoteCol: 2}, {RemoteCol: 3}}
	if err := cat.MapFragment(context.Background(), "orders", &catalog.Fragment{
		Source: "ny", RemoteTable: "orders", Columns: idCols,
		Where: expr.NewBinary(expr.OpLt, expr.NewColRef("", "oid"), expr.NewConst(types.NewInt(100))),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.MapFragment(context.Background(), "orders", &catalog.Fragment{
		Source: "eu", RemoteTable: "orders", Columns: idCols,
		Where: expr.NewBinary(expr.OpGe, expr.NewColRef("", "oid"), expr.NewConst(types.NewInt(100))),
	}); err != nil {
		t.Fatal(err)
	}

	if err := cat.DefineTable("products", types.NewSchema(
		types.Column{Name: "sku", Type: types.KindInt},
		types.Column{Name: "pname", Type: types.KindString},
		types.Column{Name: "price", Type: types.KindFloat},
	)); err != nil {
		t.Fatal(err)
	}
	if err := cat.MapSimple(context.Background(), "products", "kv", "products"); err != nil {
		t.Fatal(err)
	}

	if err := cat.DefineTable("suppliers", types.NewSchema(
		types.Column{Name: "sid", Type: types.KindInt},
		types.Column{Name: "sname", Type: types.KindString},
		types.Column{Name: "sregion", Type: types.KindString},
	)); err != nil {
		t.Fatal(err)
	}
	if err := cat.MapSimple(context.Background(), "suppliers", "files", "suppliers"); err != nil {
		t.Fatal(err)
	}

	if err := e.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	return e
}

func mustInsert(t testing.TB, s *relstore.Store, table string, rows []types.Row) {
	t.Helper()
	if _, err := s.Insert(ctx, table, rows); err != nil {
		t.Fatal(err)
	}
}

// rowsAsStrings renders result rows for order-insensitive comparison.
func rowsAsStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	return out
}

// wantRows asserts the result matches want (order-insensitive unless
// ordered is true).
func wantRows(t *testing.T, res *Result, ordered bool, want ...string) {
	t.Helper()
	got := rowsAsStrings(res)
	if !ordered {
		sort.Strings(got)
		sort.Strings(want)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %s, want %s\nall: %v", i, got[i], want[i], got)
		}
	}
}

func query(t *testing.T, e *Engine, q string, params ...types.Value) *Result {
	t.Helper()
	res, err := e.Query(ctx, q, params...)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT * FROM customers")
	if len(res.Rows) != 4 || len(res.Columns) != 4 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	if res.Columns[0] != "id" || res.Columns[3] != "balance" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestFilterAndProjection(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT name FROM customers WHERE region = 'east'")
	wantRows(t, res, false, "(alice)", "(carol)")
	res = query(t, e, "SELECT name, balance * 2 AS dbl FROM customers WHERE balance >= 200")
	wantRows(t, res, false, "(bob, 400)", "(carol, 600)")
	if res.Columns[1] != "dbl" {
		t.Errorf("alias lost: %v", res.Columns)
	}
}

func TestExpressionsAndFunctions(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT UPPER(name), CASE WHEN balance > 150 THEN 'rich' ELSE 'poor' END FROM customers WHERE id = 1")
	wantRows(t, res, false, "(ALICE, poor)")
	res = query(t, e, "SELECT name FROM customers WHERE name LIKE '%a%' AND balance BETWEEN 60 AND 250")
	wantRows(t, res, false, "(alice)")
}

func TestMultiFragmentScan(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT oid FROM orders")
	wantRows(t, res, false, "(10)", "(11)", "(12)", "(100)", "(101)", "(102)")
	// Partition pruning: only the ny fragment can hold oid < 50.
	res = query(t, e, "SELECT oid FROM orders WHERE oid < 50")
	wantRows(t, res, false, "(10)", "(11)", "(12)")
	plan, err := e.Explain(ctx, "SELECT oid FROM orders WHERE oid < 50")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "eu.orders") {
		t.Errorf("pruned fragment still in plan:\n%s", plan)
	}
}

func TestJoinAcrossSources(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, `
		SELECT c.name, o.oid FROM customers c JOIN orders o ON c.id = o.cust_id
		WHERE c.region = 'east'`)
	wantRows(t, res, false, "(alice, 10)", "(alice, 12)", "(carol, 100)", "(carol, 102)")
}

func TestJoinWithKVStore(t *testing.T) {
	e := newTestEngine(t)
	// products lives in a keyed store: the optimizer may pick semijoin
	// or bind; either way results must be right.
	res := query(t, e, `
		SELECT o.oid, p.pname, p.price FROM orders o JOIN products p ON o.sku = p.sku
		WHERE o.qty >= 5`)
	wantRows(t, res, false, "(12, sprocket, 1.25)", "(100, widget, 9.5)")
}

func TestThreeWayJoin(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, `
		SELECT c.name, p.pname, o.qty
		FROM customers c JOIN orders o ON c.id = o.cust_id JOIN products p ON o.sku = p.sku
		WHERE p.price > 10`)
	wantRows(t, res, false, "(bob, gadget, 1)", "(dave, gadget, 3)", "(carol, gizmo, 1)")
}

func TestJoinWithFileSource(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, `
		SELECT c.name, s.sname FROM customers c JOIN suppliers s ON c.region = s.sregion
		WHERE c.id = 1`)
	wantRows(t, res, false, "(alice, acme)", "(alice, initech)")
}

func TestLeftJoin(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, `
		SELECT c.name, o.oid FROM customers c LEFT JOIN orders o
		ON c.id = o.cust_id AND o.qty > 2`)
	wantRows(t, res, false,
		"(alice, 12)", "(bob, NULL)", "(carol, 100)", "(dave, 101)")
}

func TestAggregation(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT region, COUNT(*), SUM(balance) FROM customers GROUP BY region ORDER BY region")
	wantRows(t, res, true, "(east, 2, 400)", "(west, 2, 250)")
	res = query(t, e, "SELECT COUNT(*), MIN(balance), MAX(balance), AVG(balance) FROM customers")
	wantRows(t, res, false, "(4, 50, 300, 162.5)")
	res = query(t, e, "SELECT COUNT(DISTINCT sku) FROM orders")
	wantRows(t, res, false, "(4)")
}

func TestHaving(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, `
		SELECT cust_id, COUNT(*) AS n FROM orders GROUP BY cust_id HAVING COUNT(*) > 1 ORDER BY cust_id`)
	wantRows(t, res, true, "(1, 2)", "(3, 2)")
}

func TestAggOverJoin(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, `
		SELECT c.region, SUM(o.qty * p.price) AS revenue
		FROM customers c JOIN orders o ON c.id = o.cust_id JOIN products p ON o.sku = p.sku
		GROUP BY c.region ORDER BY c.region`)
	// east: alice(2*9.5 + 5*1.25) + carol(7*9.5 + 1*99) = 19+6.25+66.5+99 = 190.75
	// west: bob(1*20) + dave(3*20) = 80
	wantRows(t, res, true, "(east, 190.75)", "(west, 80)")
}

func TestOrderByLimitOffset(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT name FROM customers ORDER BY balance DESC LIMIT 2")
	wantRows(t, res, true, "(carol)", "(bob)")
	res = query(t, e, "SELECT name FROM customers ORDER BY balance DESC LIMIT 2 OFFSET 1")
	wantRows(t, res, true, "(bob)", "(alice)")
	// ORDER BY a column not in the select list (hidden sort column).
	res = query(t, e, "SELECT name FROM customers ORDER BY balance LIMIT 1")
	wantRows(t, res, true, "(dave)")
}

func TestDistinctAndUnion(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT DISTINCT region FROM customers")
	wantRows(t, res, false, "(east)", "(west)")
	res = query(t, e, "SELECT region FROM customers UNION SELECT sregion FROM suppliers")
	wantRows(t, res, false, "(east)", "(west)")
	res = query(t, e, "SELECT region FROM customers WHERE id = 1 UNION ALL SELECT sregion FROM suppliers WHERE sid = 1")
	wantRows(t, res, false, "(east)", "(east)")
}

func TestSubqueries(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, `
		SELECT name FROM customers WHERE id IN (SELECT cust_id FROM orders WHERE qty > 4)`)
	wantRows(t, res, false, "(alice)", "(carol)")
	res = query(t, e, `
		SELECT name FROM customers WHERE id NOT IN (SELECT cust_id FROM orders WHERE qty > 4)`)
	wantRows(t, res, false, "(bob)", "(dave)")
	res = query(t, e, `SELECT name FROM customers WHERE EXISTS (SELECT 1 FROM orders WHERE qty > 100)`)
	wantRows(t, res, false)
	res = query(t, e, `SELECT name FROM customers WHERE balance > (SELECT AVG(balance) FROM customers)`)
	wantRows(t, res, false, "(bob)", "(carol)")
}

func TestDerivedTable(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, `
		SELECT d.region, d.total FROM
		  (SELECT region, SUM(balance) AS total FROM customers GROUP BY region) AS d
		WHERE d.total > 300`)
	wantRows(t, res, false, "(east, 400)")
}

func TestParams(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT name FROM customers WHERE balance > ?", types.NewFloat(150))
	wantRows(t, res, false, "(bob)", "(carol)")
}

func TestExplainShape(t *testing.T) {
	e := newTestEngine(t)
	out, err := e.Explain(ctx, "EXPLAIN SELECT name FROM customers WHERE region = 'east'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FragScan ny.customers") {
		t.Errorf("explain missing frag scan:\n%s", out)
	}
	if !strings.Contains(out, "where") {
		t.Errorf("filter not pushed into source query:\n%s", out)
	}
}

func TestInsertRoutingAndReadBack(t *testing.T) {
	e := newTestEngine(t)
	// oid 50 routes to ny (oid < 100), oid 200 to eu.
	n, err := e.Exec(ctx, "INSERT INTO orders (oid, cust_id, sku, qty) VALUES (50, 1, 501, 1), (200, 2, 502, 2)")
	if err != nil || n != 2 {
		t.Fatalf("insert = %d, %v", n, err)
	}
	res := query(t, e, "SELECT oid FROM orders WHERE oid IN (50, 200)")
	wantRows(t, res, false, "(50)", "(200)")
	// A row matching no partition errors.
	if _, err := e.Exec(ctx, "INSERT INTO customers (id) VALUES (99)"); err != nil {
		t.Fatalf("single-fragment insert: %v", err)
	}
}

func TestUpdateDeleteSingleSource(t *testing.T) {
	e := newTestEngine(t)
	n, err := e.Exec(ctx, "UPDATE customers SET balance = balance + 10 WHERE region = 'east'")
	if err != nil || n != 2 {
		t.Fatalf("update = %d, %v", n, err)
	}
	res := query(t, e, "SELECT balance FROM customers WHERE id = 1")
	wantRows(t, res, false, "(110)")
	n, err = e.Exec(ctx, "DELETE FROM customers WHERE id = 4")
	if err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	res = query(t, e, "SELECT COUNT(*) FROM customers")
	wantRows(t, res, false, "(3)")
}

func TestUpdateAcrossSources2PC(t *testing.T) {
	e := newTestEngine(t)
	// Touches both the ny and eu order fragments → two participants.
	n, err := e.Exec(ctx, "UPDATE orders SET qty = qty + 1 WHERE sku = 501")
	if err != nil || n != 2 {
		t.Fatalf("cross-source update = %d, %v", n, err)
	}
	res := query(t, e, "SELECT oid, qty FROM orders WHERE sku = 501")
	wantRows(t, res, false, "(10, 3)", "(100, 8)")
	// The coordinator logged exactly one commit decision with 2 parts.
	log := e.Coordinator().Log().Decisions()
	if len(log) != 1 || len(log[0].Participants) != 2 {
		t.Errorf("decision log = %+v", log)
	}
}

func TestDeleteAcrossSources(t *testing.T) {
	e := newTestEngine(t)
	n, err := e.Exec(ctx, "DELETE FROM orders WHERE sku = 502")
	if err != nil || n != 2 {
		t.Fatalf("cross delete = %d, %v", n, err)
	}
	res := query(t, e, "SELECT COUNT(*) FROM orders")
	wantRows(t, res, false, "(4)")
}

func TestWriteToNonWritableSourceFails(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Exec(ctx, "INSERT INTO suppliers (sid, sname, sregion) VALUES (9, 'x', 'y')"); err == nil {
		t.Error("insert into file source must fail")
	}
}

func TestMultiSourceWriteNeedsTxn(t *testing.T) {
	e := newTestEngine(t)
	// orders ∪ products spans relstore+kvstore — but a single UPDATE
	// only targets one table; craft an update touching both fragments
	// where one particip can't do txn: not possible for orders (both
	// relstores). Updating products (kvstore, single source) works
	// without transactions.
	n, err := e.Exec(ctx, "UPDATE products SET price = price * 2 WHERE sku = 501")
	if err != nil || n != 1 {
		t.Fatalf("kv update = %d, %v", n, err)
	}
	res := query(t, e, "SELECT price FROM products WHERE sku = 501")
	wantRows(t, res, false, "(19)")
}

func TestAbortOnVoteNoLeavesStoresConsistent(t *testing.T) {
	e := newTestEngine(t)
	euSrc, err := e.Catalog().Source("eu")
	if err != nil {
		t.Fatal(err)
	}
	euSrc.(*relstore.Store).SetFailPolicy(relstore.FailPolicy{FailPrepare: true})
	if _, err := e.Exec(ctx, "UPDATE orders SET qty = 0"); err == nil {
		t.Fatal("2PC with failing participant must error")
	}
	// Neither store applied anything.
	res := query(t, e, "SELECT COUNT(*) FROM orders WHERE qty = 0")
	wantRows(t, res, false, "(0)")
}

func TestErrorPaths(t *testing.T) {
	e := newTestEngine(t)
	bad := []string{
		"SELECT nope FROM customers",
		"SELECT * FROM nonexistent",
		"SELECT name FROM customers WHERE region = 5",
		"SELECT region, SUM(balance) FROM customers",              // bare col without GROUP BY
		"SELECT name FROM customers GROUP BY region",              // name not grouped
		"SELECT * FROM customers UNION SELECT sid FROM suppliers", // arity
	}
	for _, q := range bad {
		if _, err := e.Query(ctx, q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
	if _, err := e.Exec(ctx, "SELECT 1"); err == nil {
		t.Error("Exec(SELECT) must fail")
	}
	if _, err := e.Query(ctx, "DELETE FROM customers"); err == nil {
		t.Error("Query(DELETE) must fail")
	}
}

func TestRunDispatch(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Run(ctx, "SELECT COUNT(*) FROM customers")
	if err != nil || res.Rows[0][0].Int() != 4 {
		t.Fatalf("Run select = %v, %v", res, err)
	}
	res, err = e.Run(ctx, "DELETE FROM customers WHERE id = 1")
	if err != nil || res.Rows[0][0].Int() != 1 {
		t.Fatalf("Run delete = %v, %v", res, err)
	}
	res, err = e.Run(ctx, "EXPLAIN SELECT * FROM customers")
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("Run explain = %v, %v", res, err)
	}
}

func TestQueryIterStreaming(t *testing.T) {
	e := newTestEngine(t)
	schema, it, err := e.QueryIter(ctx, "SELECT id FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if schema.Len() != 1 {
		t.Errorf("schema = %v", schema)
	}
	count := 0
	for {
		_, err := it.Next()
		if err != nil {
			break
		}
		count++
	}
	if count != 4 {
		t.Errorf("streamed %d rows", count)
	}
}

func TestResultString(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT id, name FROM customers WHERE id = 1")
	s := res.String()
	if !strings.Contains(s, "id") || !strings.Contains(s, "alice") {
		t.Errorf("result table:\n%s", s)
	}
}

func TestForcedStrategiesAgree(t *testing.T) {
	// All three distributed join strategies must return identical rows.
	baseline := map[string][]string{}
	for _, strat := range []string{"ship-all", "semijoin", "bind"} {
		e := newTestEngine(t)
		switch strat {
		case "ship-all":
			e.PlanOptions().ForceStrategy = 1 // plan.StrategyShipAll
		case "semijoin":
			e.PlanOptions().ForceStrategy = 2 // plan.StrategySemiJoin
		case "bind":
			e.PlanOptions().ForceStrategy = 3 // plan.StrategyBind
		}
		for _, q := range []string{
			"SELECT o.oid, p.pname FROM orders o JOIN products p ON o.sku = p.sku",
			"SELECT c.name, o.oid FROM customers c JOIN orders o ON c.id = o.cust_id WHERE c.region = 'east'",
		} {
			res, err := e.Query(ctx, q)
			if err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			got := rowsAsStrings(res)
			sort.Strings(got)
			key := q
			if prev, ok := baseline[key]; ok {
				if fmt.Sprint(prev) != fmt.Sprint(got) {
					t.Errorf("strategy %s disagrees on %q:\n got %v\nwant %v", strat, q, got, prev)
				}
			} else {
				baseline[key] = got
			}
		}
	}
}

func TestParallelVsSequentialFragments(t *testing.T) {
	for _, parallel := range []bool{true, false} {
		e := newTestEngine(t)
		e.PlanOptions().ParallelFragments = parallel
		res := query(t, e, "SELECT COUNT(*) FROM orders")
		wantRows(t, res, false, "(6)")
	}
}

func TestOptimizerAblationsStillCorrect(t *testing.T) {
	// Turning each rule off must never change results.
	queries := []string{
		"SELECT name FROM customers WHERE region = 'east' AND balance > 100",
		"SELECT c.region, COUNT(*) FROM customers c JOIN orders o ON c.id = o.cust_id GROUP BY c.region",
		"SELECT o.oid FROM orders o JOIN products p ON o.sku = p.sku WHERE p.price < 10",
	}
	baseline := map[string][]string{}
	for _, mode := range []string{"full", "nopush", "noprune", "noreorder", "nofold"} {
		e := newTestEngine(t)
		switch mode {
		case "nopush":
			e.PlanOptions().PushFilters = false
		case "noprune":
			e.PlanOptions().PruneColumns = false
		case "noreorder":
			e.PlanOptions().ReorderJoins = false
		case "nofold":
			e.PlanOptions().FoldConstants = false
		}
		for _, q := range queries {
			res, err := e.Query(ctx, q)
			if err != nil {
				t.Fatalf("%s %q: %v", mode, q, err)
			}
			got := rowsAsStrings(res)
			sort.Strings(got)
			if prev, ok := baseline[q]; ok {
				if fmt.Sprint(prev) != fmt.Sprint(got) {
					t.Errorf("mode %s changes results of %q:\n got %v\nwant %v", mode, q, got, prev)
				}
			} else {
				baseline[q] = got
			}
		}
	}
}

func TestTwoPhaseAggregationAcrossFragments(t *testing.T) {
	e := newTestEngine(t)
	// orders spans two sources; the planner pushes partial aggregates
	// into each fragment and combines them at the mediator.
	out, err := e.Explain(ctx, "SELECT sku, COUNT(*), SUM(qty), AVG(qty) FROM orders GROUP BY sku")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "aggs[") {
		t.Errorf("partial aggregation not pushed:\n%s", out)
	}
	if !strings.Contains(out, "Aggregate") {
		t.Errorf("final combine step missing:\n%s", out)
	}
	res := query(t, e, "SELECT sku, COUNT(*), SUM(qty), AVG(qty) FROM orders GROUP BY sku ORDER BY sku")
	// sku 501: orders (10,qty2) and (100,qty7): count 2, sum 9, avg 4.5
	// sku 502: (11,1),(101,3): count 2, sum 4, avg 2
	// sku 503: (12,5): count 1, sum 5, avg 5
	// sku 504: (102,1): count 1, sum 1, avg 1
	wantRows(t, res, true,
		"(501, 2, 9, 4.5)", "(502, 2, 4, 2)", "(503, 1, 5, 5)", "(504, 1, 1, 1)")
	// Global aggregate (no GROUP BY) across fragments.
	res = query(t, e, "SELECT COUNT(*), SUM(qty), MIN(qty), MAX(qty), AVG(qty) FROM orders")
	wantRows(t, res, false, "(6, 19, 1, 7, 3.1666666666666665)")
	// And the pushed plan agrees with the unpushed one.
	e.PlanOptions().PushAggregates = false
	res2 := query(t, e, "SELECT COUNT(*), SUM(qty), MIN(qty), MAX(qty), AVG(qty) FROM orders")
	if res.Rows[0].String() != res2.Rows[0].String() {
		t.Errorf("pushed %v != unpushed %v", res.Rows[0], res2.Rows[0])
	}
}

func TestDistributedTopK(t *testing.T) {
	e := newTestEngine(t)
	// orders spans two relstores (both sort+limit capable): the
	// per-fragment top-k ships, the mediator merges and cuts.
	out, err := e.Explain(ctx, "SELECT oid, qty FROM orders ORDER BY qty DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "limit 2") {
		t.Errorf("per-fragment limit not pushed:\n%s", out)
	}
	res := query(t, e, "SELECT oid, qty FROM orders ORDER BY qty DESC LIMIT 2")
	wantRows(t, res, true, "(100, 7)", "(12, 5)")
	// Results agree with the unpushed plan.
	e.PlanOptions().PushTopK = false
	res2 := query(t, e, "SELECT oid, qty FROM orders ORDER BY qty DESC LIMIT 2")
	if fmt.Sprint(rowsAsStrings(res)) != fmt.Sprint(rowsAsStrings(res2)) {
		t.Errorf("pushed %v != unpushed %v", res.Rows, res2.Rows)
	}
}

func TestTopKWithOffsetAcrossFragments(t *testing.T) {
	e := newTestEngine(t)
	res := query(t, e, "SELECT oid FROM orders ORDER BY oid LIMIT 2 OFFSET 2")
	wantRows(t, res, true, "(12)", "(100)")
}

func TestViews(t *testing.T) {
	e := newTestEngine(t)
	err := e.CreateView("east_customers",
		"SELECT id, name, balance FROM customers WHERE region = 'east'")
	if err != nil {
		t.Fatal(err)
	}
	res := query(t, e, "SELECT name FROM east_customers WHERE balance > 150")
	wantRows(t, res, false, "(carol)")
	// Views join like tables, under aliases.
	res = query(t, e, `
		SELECT ec.name, o.oid FROM east_customers ec JOIN orders o ON ec.id = o.cust_id
		WHERE o.qty > 4`)
	wantRows(t, res, false, "(alice, 12)", "(carol, 100)")
	// Views over views.
	if err := e.CreateView("rich_east", "SELECT name FROM east_customers WHERE balance > 200"); err != nil {
		t.Fatal(err)
	}
	res = query(t, e, "SELECT * FROM rich_east")
	wantRows(t, res, false, "(carol)")
	// A view name cannot collide with a table or an existing view.
	if err := e.CreateView("customers", "SELECT 1"); err == nil {
		t.Error("view/table collision must error")
	}
	if err := e.CreateView("east_customers", "SELECT 1"); err == nil {
		t.Error("duplicate view must error")
	}
	// Bodies must parse and plan.
	if err := e.CreateView("bad", "SELECT nope FROM customers"); err == nil {
		t.Error("invalid view body must error")
	}
	if err := e.CreateView("selfref", "SELECT * FROM selfref"); err == nil {
		t.Error("self-referencing view must error")
	}
	// Filter pushdown reaches through views into the source query.
	plan, err := e.Explain(ctx, "SELECT name FROM east_customers WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "where") {
		t.Errorf("view predicate not pushed:\n%s", plan)
	}
}

func TestVerticalIntegrationViaView(t *testing.T) {
	// The classic vertical-partition pattern: two sources each hold some
	// columns of a logical entity; a view joins them on the key and
	// presents one wide table.
	e := newTestEngine(t)
	if err := e.CreateView("order_facts", `
		SELECT o.oid AS oid, o.qty AS qty, p.pname AS pname, p.price AS price
		FROM orders o JOIN products p ON o.sku = p.sku`); err != nil {
		t.Fatal(err)
	}
	res := query(t, e, "SELECT pname, qty * price AS total FROM order_facts WHERE oid = 12")
	wantRows(t, res, false, "(sprocket, 6.25)")
}

func TestMergeJoinAgreesWithHashJoin(t *testing.T) {
	queries := []string{
		"SELECT c.name, o.oid FROM customers c JOIN orders o ON c.id = o.cust_id",
		"SELECT COUNT(*) FROM customers c JOIN orders o ON c.id = o.cust_id WHERE o.qty > 1",
	}
	for _, q := range queries {
		e := newTestEngine(t)
		want := rowsAsStrings(query(t, e, q))
		sort.Strings(want)
		e2 := newTestEngine(t)
		e2.PlanOptions().PreferMergeJoin = true
		got := rowsAsStrings(query(t, e2, q))
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("merge join disagrees on %q:\n got %v\nwant %v", q, got, want)
		}
	}
	// The plan actually uses merge when both sides are single fragments.
	e := newTestEngine(t)
	e.PlanOptions().PreferMergeJoin = true
	out, err := e.Explain(ctx, "SELECT c.name FROM customers c JOIN suppliers s ON c.id = s.sid")
	if err != nil {
		t.Fatal(err)
	}
	// suppliers is a filestore (no sort capability) — merge must NOT
	// trigger there.
	if strings.Contains(out, "merge") {
		t.Errorf("merge join chosen against a sort-incapable source:\n%s", out)
	}
}

func TestMergeJoinTriggers(t *testing.T) {
	e := newTestEngine(t)
	e.PlanOptions().PreferMergeJoin = true
	// ship-all is a merge precondition (the cost-based chooser would
	// pick a key-shipping strategy for these tiny tables).
	e.PlanOptions().ForceStrategy = 1 // plan.StrategyShipAll
	// Self-join of a single-fragment relational table: both sides are
	// bare sort-capable fragment scans → merge fires.
	q := "SELECT a.name, b.name FROM customers a JOIN customers b ON a.id = b.id"
	out, err := e.Explain(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "merge") {
		t.Fatalf("merge join did not trigger:\n%s", out)
	}
	res := query(t, e, q)
	if len(res.Rows) != 4 {
		t.Errorf("self merge join = %d rows", len(res.Rows))
	}
	// Duplicate keys on both sides through a view of orders by sku.
	e2 := newTestEngine(t)
	e2.PlanOptions().PreferMergeJoin = true
	e2.PlanOptions().ForceStrategy = 1
	dup := query(t, e2, `
		SELECT a.oid, b.oid FROM orders a JOIN orders b ON a.sku = b.sku WHERE a.oid < 100 AND b.oid < 100`)
	// ny orders skus: 501,502,503 distinct → 3 self pairs.
	if len(dup.Rows) != 3 {
		t.Errorf("dup-key merge join = %d rows: %v", len(dup.Rows), dup.Rows)
	}
}

func TestRightJoin(t *testing.T) {
	e := newTestEngine(t)
	// products has sku 503/504 with few orders; a RIGHT JOIN keeps all
	// products, NULL-extending the order side.
	res := query(t, e, `
		SELECT o.oid, p.pname FROM orders o RIGHT JOIN products p ON o.sku = p.sku
		WHERE o.qty > 2 OR o.oid IS NULL`)
	// qty>2: oid 12 (sprocket qty 5), 100 (widget 7), 101 (gadget 3).
	wantRows(t, res, false,
		"(12, sprocket)", "(100, widget)", "(101, gadget)")
	// Unmatched right rows survive with NULL left columns.
	res = query(t, e, `
		SELECT p.pname FROM orders o RIGHT JOIN products p ON o.sku = p.sku AND o.qty > 100`)
	wantRows(t, res, false, "(widget)", "(gadget)", "(sprocket)", "(gizmo)")
	// RIGHT JOIN equals the mirrored LEFT JOIN.
	a := query(t, e, "SELECT c.name, o.oid FROM orders o RIGHT JOIN customers c ON c.id = o.cust_id")
	bq := query(t, e, "SELECT c.name, o.oid FROM customers c LEFT JOIN orders o ON c.id = o.cust_id")
	ga, gb := rowsAsStrings(a), rowsAsStrings(bq)
	sort.Strings(ga)
	sort.Strings(gb)
	if fmt.Sprint(ga) != fmt.Sprint(gb) {
		t.Errorf("RIGHT JOIN %v != mirrored LEFT JOIN %v", ga, gb)
	}
}

func TestExplainAnalyze(t *testing.T) {
	e := newTestEngine(t)
	out, err := e.ExplainAnalyze(ctx,
		"SELECT c.region, COUNT(*) FROM customers c JOIN orders o ON c.id = o.cust_id GROUP BY c.region")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows=") || !strings.Contains(out, "time=") {
		t.Errorf("missing measurements:\n%s", out)
	}
	if !strings.Contains(out, "total: 2 row(s)") {
		t.Errorf("missing total:\n%s", out)
	}
	// Scans report the rows they produced.
	if !strings.Contains(out, "FragScan ny.customers") {
		t.Errorf("plan shape:\n%s", out)
	}
	if _, err := e.ExplainAnalyze(ctx, "DELETE FROM customers"); err == nil {
		t.Error("EXPLAIN ANALYZE of a write must error")
	}
}

func TestConcurrentQueriesOneEngine(t *testing.T) {
	e := newTestEngine(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	queries := []string{
		"SELECT COUNT(*) FROM customers",
		"SELECT c.name, o.oid FROM customers c JOIN orders o ON c.id = o.cust_id",
		"SELECT region, SUM(balance) FROM customers GROUP BY region",
		"SELECT oid FROM orders ORDER BY qty DESC LIMIT 3",
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := e.Query(ctx, queries[(g+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestQueryContextCancellation(t *testing.T) {
	e := newTestEngine(t)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.Query(cctx, "SELECT c.name FROM customers c JOIN orders o ON c.id = o.cust_id"); err == nil {
		t.Error("cancelled context must abort the query")
	}
}

func TestExplainAnalyzeSQL(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Run(ctx, "EXPLAIN ANALYZE SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, r := range res.Rows {
		out += r[0].Str() + "\n"
	}
	if !strings.Contains(out, "rows=") || !strings.Contains(out, "total: 1 row(s)") {
		t.Errorf("EXPLAIN ANALYZE output:\n%s", out)
	}
}
