package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gis/internal/obs"
)

// TestRaceStressDebugHandlers hammers every debug HTTP endpoint while
// federated queries execute concurrently, so the handlers' snapshot
// paths race against live span trees, the slow-query ring, the active
// map, and the feedback store. Every response must be 200 with valid
// JSON. Run under -race.
func TestRaceStressDebugHandlers(t *testing.T) {
	if testing.Short() {
		t.Skip("race stress test")
	}
	e := traceFederation(t, "dbgA", "dbgB")
	// Zero threshold: every statement lands in the slow ring, so /slow
	// serves capped span subtrees while queries finish.
	e.Queries().SetThreshold(0)
	dbg := httptest.NewServer(obs.Handler(obs.Default(), e.Queries(), obs.DefaultFeedback()))
	defer dbg.Close()

	const (
		queryWorkers = 4
		httpWorkers  = 4
		iters        = 20
	)
	paths := []string{"/metrics", "/slow", "/sessions", "/estimates"}
	errs := make(chan error, queryWorkers+httpWorkers)
	var wg sync.WaitGroup
	for g := 0; g < queryWorkers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := e.Query(ctx,
					"SELECT c.name, SUM(o.amount) FROM cust c JOIN ord o ON c.id = o.cust_id GROUP BY c.name")
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 2 {
					errs <- fmt.Errorf("join returned %d rows, want 2", len(res.Rows))
					return
				}
			}
		}()
	}
	for g := 0; g < httpWorkers; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				path := paths[(worker+i)%len(paths)]
				resp, err := http.Get(dbg.URL + path)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("GET %s: %v", path, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
				if !json.Valid(body) {
					errs <- fmt.Errorf("GET %s: invalid JSON: %.120s", path, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the storm, /estimates reflects the fragment scans the
	// workers just ran.
	resp, err := http.Get(dbg.URL + "/estimates")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var est struct {
		Entries []obs.FeedbackEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatalf("/estimates decode: %v", err)
	}
	if len(est.Entries) == 0 {
		t.Error("/estimates empty after federated workload")
	}
}
