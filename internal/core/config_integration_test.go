package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"gis/internal/catalog"
	"gis/internal/relstore"
	"gis/internal/source"
	"gis/internal/types"
	"gis/internal/wire"
)

// TestApplyConfigEndToEnd spins two wire-served stores, loads a JSON
// federation description that partitions a table across them, and runs a
// query — the full gisql -config path.
func TestApplyConfigEndToEnd(t *testing.T) {
	mk := func(name string, base int) *wire.Server {
		st := relstore.New(name)
		if err := st.CreateTable("log", types.NewSchema(
			types.Column{Name: "seq", Type: types.KindInt},
			types.Column{Name: "msg", Type: types.KindString},
		), 0); err != nil {
			t.Fatal(err)
		}
		var rows []types.Row
		for i := 0; i < 10; i++ {
			rows = append(rows, types.Row{
				types.NewInt(int64(base + i)),
				types.NewString(fmt.Sprintf("m%d", base+i)),
			})
		}
		if _, err := st.Insert(ctx, "log", rows); err != nil {
			t.Fatal(err)
		}
		srv, err := wire.Serve(context.Background(), "127.0.0.1:0", st)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	s1, s2 := mk("siteA", 0), mk("siteB", 100)

	cfg := fmt.Sprintf(`{
	  "sources": [
	    {"name": "siteA", "addr": "%s", "latency_ms": 1},
	    {"name": "siteB", "addr": "%s"}
	  ],
	  "tables": [{
	    "name": "log",
	    "columns": [{"name": "seq", "type": "int"}, {"name": "msg", "type": "string"}],
	    "fragments": [
	      {"source": "siteA", "remote_table": "log",
	       "columns": [{"remote_col": 0}, {"remote_col": 1}], "where": "seq < 100"},
	      {"source": "siteB", "remote_table": "log",
	       "columns": [{"remote_col": 0}, {"remote_col": 1}], "where": "seq >= 100"}
	    ]
	  }]
	}`, s1.Addr(), s2.Addr())

	e := New()
	var clients []*wire.Client
	dial := func(ctx context.Context, sc catalog.SourceConfig) (source.Source, error) {
		var opts []wire.Option
		opts = append(opts, wire.WithName(sc.Name))
		if sc.LatencyMS > 0 {
			opts = append(opts, wire.WithSimLink(wire.SimLink{
				Latency: time.Duration(sc.LatencyMS) * time.Millisecond,
			}))
		}
		cl, err := wire.DialContext(ctx, sc.Addr, opts...)
		if err == nil {
			clients = append(clients, cl)
		}
		return cl, err
	}
	if err := e.ApplyConfig(context.Background(), []byte(cfg), dial); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, cl := range clients {
			cl.Close()
		}
	})
	if err := e.Analyze(ctx); err != nil {
		t.Fatal(err)
	}

	res := query(t, e, "SELECT COUNT(*) FROM log")
	wantRows(t, res, false, "(20)")
	// Partition pruning through the config-parsed predicates.
	plan, err := e.Explain(ctx, "SELECT msg FROM log WHERE seq > 100")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "siteA.log") {
		t.Errorf("pruned fragment still planned:\n%s", plan)
	}
	// Cross-site write under 2PC via the wire protocol.
	n, err := e.Exec(ctx, "UPDATE log SET msg = 'x' WHERE seq = 5 OR seq = 105")
	if err != nil || n != 2 {
		t.Fatalf("wire 2PC update = %d, %v", n, err)
	}
}
