package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gis/internal/expr"
	"gis/internal/types"
)

// TestDifferentialSingleTable fuzzes single-table queries against a
// naive reference evaluation over the materialized global table: the
// whole pipeline (parse → optimize → decompose → pushdown → compensate →
// translate) must agree with direct filtering.
func TestDifferentialSingleTable(t *testing.T) {
	e := newTestEngine(t)
	// Materialize the reference copy of the multi-fragment orders table.
	ref := query(t, e, "SELECT * FROM orders")
	schema := ref.Schema

	rng := rand.New(rand.NewSource(99))
	cols := []string{"oid", "cust_id", "sku", "qty"}

	randPred := func() (string, expr.Expr) {
		var sqlParts []string
		var exprs []expr.Expr
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			col := cols[rng.Intn(len(cols))]
			op := []string{"=", "<", ">", "<=", ">=", "<>"}[rng.Intn(6)]
			val := int64(rng.Intn(600))
			sqlParts = append(sqlParts, fmt.Sprintf("%s %s %d", col, op, val))
			opMap := map[string]expr.BinOp{
				"=": expr.OpEq, "<": expr.OpLt, ">": expr.OpGt,
				"<=": expr.OpLe, ">=": expr.OpGe, "<>": expr.OpNe,
			}
			exprs = append(exprs, expr.NewBinary(opMap[op],
				expr.NewColRef("", col), expr.NewConst(types.NewInt(val))))
		}
		sqlText := sqlParts[0]
		tree := exprs[0]
		for i := 1; i < len(exprs); i++ {
			conj := rng.Intn(2) == 0
			if conj {
				sqlText = fmt.Sprintf("(%s) AND (%s)", sqlText, sqlParts[i])
				tree = expr.NewBinary(expr.OpAnd, tree, exprs[i])
			} else {
				sqlText = fmt.Sprintf("(%s) OR (%s)", sqlText, sqlParts[i])
				tree = expr.NewBinary(expr.OpOr, tree, exprs[i])
			}
		}
		return sqlText, tree
	}

	for trial := 0; trial < 200; trial++ {
		sqlPred, predTree := randPred()
		bound, err := expr.Bind(predTree, schema)
		if err != nil {
			t.Fatalf("trial %d bind: %v", trial, err)
		}
		// Reference evaluation.
		var want []string
		for _, r := range ref.Rows {
			ok, err := expr.EvalBool(bound, r)
			if err != nil {
				t.Fatalf("trial %d eval: %v", trial, err)
			}
			if ok {
				want = append(want, r.String())
			}
		}
		got := rowsAsStrings(query(t, e, "SELECT * FROM orders WHERE "+sqlPred))
		sort.Strings(got)
		sort.Strings(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: WHERE %s\n got %v\nwant %v", trial, sqlPred, got, want)
		}
	}
}

// TestDifferentialAggregates fuzzes grouped aggregates against reference
// accumulation.
func TestDifferentialAggregates(t *testing.T) {
	e := newTestEngine(t)
	ref := query(t, e, "SELECT * FROM orders")
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 50; trial++ {
		limit := int64(rng.Intn(500)) // filter bound on oid
		q := fmt.Sprintf(
			"SELECT sku, COUNT(*), SUM(qty), MIN(qty), MAX(qty) FROM orders WHERE oid < %d GROUP BY sku", limit)
		got := rowsAsStrings(query(t, e, q))
		sort.Strings(got)

		type agg struct{ count, sum, min, max int64 }
		groups := map[int64]*agg{}
		for _, r := range ref.Rows {
			if r[0].Int() >= limit {
				continue
			}
			sku, qty := r[2].Int(), r[3].Int()
			a, ok := groups[sku]
			if !ok {
				a = &agg{min: qty, max: qty}
				groups[sku] = a
			}
			a.count++
			a.sum += qty
			if qty < a.min {
				a.min = qty
			}
			if qty > a.max {
				a.max = qty
			}
		}
		var want []string
		for sku, a := range groups {
			want = append(want, fmt.Sprintf("(%d, %d, %d, %d, %d)", sku, a.count, a.sum, a.min, a.max))
		}
		sort.Strings(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: %s\n got %v\nwant %v", trial, q, got, want)
		}
	}
}

// TestDifferentialTopK fuzzes ORDER BY/LIMIT against reference sorting.
func TestDifferentialTopK(t *testing.T) {
	e := newTestEngine(t)
	ref := query(t, e, "SELECT * FROM orders")
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		limit := 1 + rng.Intn(8)
		desc := rng.Intn(2) == 0
		dir := "ASC"
		if desc {
			dir = "DESC"
		}
		q := fmt.Sprintf("SELECT oid FROM orders ORDER BY oid %s LIMIT %d", dir, limit)
		got := rowsAsStrings(query(t, e, q))

		oids := make([]int64, len(ref.Rows))
		for i, r := range ref.Rows {
			oids[i] = r[0].Int()
		}
		sort.Slice(oids, func(a, b int) bool {
			if desc {
				return oids[a] > oids[b]
			}
			return oids[a] < oids[b]
		})
		n := limit
		if n > len(oids) {
			n = len(oids)
		}
		want := make([]string, n)
		for i := 0; i < n; i++ {
			want[i] = fmt.Sprintf("(%d)", oids[i])
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: %s\n got %v\nwant %v", trial, q, got, want)
		}
	}
}
