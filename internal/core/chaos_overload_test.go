// Overload chaos: many tenants drive a wire-attached federation past
// its admission capacity while one slow consumer drags a stream out,
// exercising quotas, typed shedding, credit-based backpressure, and the
// engine's session accounting all at once. Lives in package core_test
// because it builds fixtures through internal/workload (which imports
// core).
package core_test

import (
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"gis/internal/admission"
	"gis/internal/workload"
)

func TestChaosOverload(t *testing.T) {
	ctx := context.Background()
	goroutinesBefore := runtime.NumGoroutine()

	f, err := workload.TwoTable(ctx, 50, 2000, true, workload.Link{})
	if err != nil {
		t.Fatal(err)
	}
	const q = "SELECT region, SUM(amount) FROM orders GROUP BY region"

	// Uncontended baseline before the controller goes in.
	if _, err := f.Engine.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	var base []time.Duration
	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := f.Engine.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
		base = append(base, time.Since(start))
	}

	// Capacity far below the offered load: per-tenant buckets that
	// cannot sustain a tight loop are the binding constraint (they are
	// the fairness mechanism — a global FIFO queue alone would let
	// early arrivals starve the rest), with the global cap behind them.
	f.Engine.SetAdmission(admission.New(admission.Config{
		MaxInFlight: 4,
		MaxQueue:    8,
		MaxWait:     15 * time.Millisecond,
		TenantRate:  30,
		TenantBurst: 2,
		MemQuota:    8 << 20,
	}))

	// One slow consumer holds a streaming result open for the whole
	// storm: credit-based flow control must stall its producer instead
	// of buffering the stream into server memory.
	slowDone := make(chan error, 1)
	go func() {
		sctx := admission.WithTenant(ctx, "slowpoke")
		_, it, err := f.Engine.QueryIter(sctx, "SELECT oid, amount FROM orders")
		if err != nil {
			slowDone <- err
			return
		}
		defer it.Close()
		n := 0
		for {
			_, err := it.Next()
			if err == io.EOF {
				slowDone <- nil
				return
			}
			if err != nil {
				slowDone <- err
				return
			}
			n++
			if n%200 == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	results := workload.RunOverload(ctx, f.Engine, 6, 25, q)

	if err := <-slowDone; err != nil && !errors.Is(err, admission.ErrOverload) {
		t.Fatalf("slow consumer died outside the shed taxonomy: %v", err)
	}

	var admitted, shed int64
	var lat []time.Duration
	for _, r := range results {
		admitted += r.Admitted
		shed += r.Shed
		lat = append(lat, r.Latencies...)
		if r.Failed > 0 {
			t.Errorf("%s: %d hard failures; every rejection must be a typed ErrOverload", r.Tenant, r.Failed)
		}
		// Fairness: per-tenant buckets guarantee each tenant both makes
		// progress and absorbs a share of the shedding.
		if r.Admitted == 0 {
			t.Errorf("%s: starved (0 admitted of 25)", r.Tenant)
		}
		if r.Shed == 0 {
			t.Errorf("%s: shed nothing under 4x+ overload; shedding is concentrated elsewhere", r.Tenant)
		}
	}
	if shed == 0 {
		t.Fatal("overload produced no sheds at all")
	}
	t.Logf("admitted=%d shed=%d (baseline p99 %v, loaded p99 %v)",
		admitted, shed, workload.Percentile(base, 99), workload.Percentile(lat, 99))

	// Admitted queries must stay responsive: bounded by the uncontended
	// tail plus the queueing the config explicitly allows (bucket wait +
	// slot wait), with slack for the race detector.
	if p99, bound := workload.Percentile(lat, 99), 2*workload.Percentile(base, 99)+200*time.Millisecond; p99 > bound {
		t.Errorf("admitted p99 %v exceeds %v; admission is queueing instead of shedding", p99, bound)
	}

	// Memory ceiling: the storm streams a few MB of rows; anything near
	// the ceiling means backpressure or quotas stopped bounding buffers.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 256<<20 {
		t.Errorf("HeapAlloc after storm = %d MiB, want < 256 MiB", ms.HeapAlloc>>20)
	}

	// Zero goroutine leaks: closing the fixture must return the process
	// to its pre-test population (give servers a moment to unwind).
	f.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before storm, %d after close", goroutinesBefore, runtime.NumGoroutine())
}
