// Package core implements the mediator itself — the paper's Global
// Information System. An Engine owns the global catalog, plans global
// SQL against it (parse → subquery materialization → logical plan →
// optimize → decompose), executes the distributed plan, and coordinates
// global updates with two-phase commit.
package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"gis/internal/admission"
	"gis/internal/catalog"
	"gis/internal/exec"
	"gis/internal/expr"
	"gis/internal/obs"
	"gis/internal/plan"
	"gis/internal/resilience"
	"gis/internal/source"
	"gis/internal/sql"
	"gis/internal/stats"
	"gis/internal/txn"
	"gis/internal/types"
)

// Engine is a Global Information System instance.
type Engine struct {
	cat   *catalog.Catalog
	opts  *plan.Options
	coord *txn.Coordinator

	// tracing, when set, attaches a fresh obs.Trace to every statement
	// that does not already carry one; the completed trace is kept in
	// lastTrace (gisql \trace). Callers may instead supply their own
	// trace via obs.WithTrace on the context.
	tracing   atomic.Bool
	lastTrace atomic.Pointer[obs.Trace]
	// qlog tracks in-flight statements and retains slow ones with their
	// traces (served by the debug endpoint).
	qlog *obs.QueryLog
	// partial, when set, lets SELECTs survive non-essential source
	// failures: a failed union branch or key-shipped-join fragment is
	// recorded instead of failing the query, and the Result carries a
	// typed PartialResultError describing what is missing.
	partial atomic.Bool
	// admit, when set, gates every top-level statement through admission
	// control: over-limit statements are shed with a typed ErrOverload
	// before any planning work is done. Statements whose context already
	// carries an admitted session (sub-statements, or queries the wire
	// server admitted) pass through untouched.
	admit atomic.Pointer[admission.Controller]
}

// mPartialQueries counts top-level SELECTs that completed degraded.
var mPartialQueries = obs.Default().Counter("core.partial_queries")

// Option configures an Engine.
type Option func(*Engine)

// WithPlanOptions overrides the optimizer configuration (used by the
// evaluation harness for ablations).
func WithPlanOptions(o *plan.Options) Option {
	return func(e *Engine) { e.opts = o }
}

// New creates an empty engine; register sources and define the global
// schema through Catalog().
func New(opts ...Option) *Engine {
	e := &Engine{
		cat:   catalog.New(),
		opts:  plan.DefaultOptions(),
		coord: txn.NewCoordinator(),
		qlog:  obs.NewQueryLog(250*time.Millisecond, 64),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// WithPartialResults enables graceful degradation from construction.
func WithPartialResults() Option {
	return func(e *Engine) { e.partial.Store(true) }
}

// SetPartialResults toggles graceful degradation for SELECTs. Off by
// default: every source failure fails the query. On, a failed fan-out
// branch yields a Result with Partial set (unless every branch failed,
// which is still a hard error). Writes are never degraded.
func (e *Engine) SetPartialResults(on bool) { e.partial.Store(on) }

// PartialResults reports whether graceful degradation is enabled.
func (e *Engine) PartialResults() bool { return e.partial.Load() }

// SetAdmission installs (or, with nil, removes) the admission
// controller gating top-level statements. The controller's Degraded
// hook is typically wired to the catalog health tracker's Degraded.
func (e *Engine) SetAdmission(ctrl *admission.Controller) { e.admit.Store(ctrl) }

// Admission returns the installed admission controller (nil when
// admission control is off).
func (e *Engine) Admission() *admission.Controller { return e.admit.Load() }

// SetTracing toggles per-statement tracing. Off by default: with it off
// the only per-query cost is the query-log bookkeeping.
func (e *Engine) SetTracing(on bool) { e.tracing.Store(on) }

// Tracing reports whether per-statement tracing is enabled.
func (e *Engine) Tracing() bool { return e.tracing.Load() }

// TraceLast returns the trace of the most recently completed top-level
// statement (nil when tracing was never on).
func (e *Engine) TraceLast() *obs.Trace { return e.lastTrace.Load() }

// Queries exposes the engine's query log: in-flight statements and the
// retained slow ones.
func (e *Engine) Queries() *obs.QueryLog { return e.qlog }

// instrument gates one top-level statement through admission control
// (when enabled), begins query-log tracking, and — when tracing is on
// and the context does not already carry a trace — attaches a fresh one
// rooted at a query span. A shed statement returns the typed overload
// error immediately, before any planning work. On success the returned
// context must be used for the statement; finish must be called exactly
// once with the statement's outcome and returns that outcome with a
// session abort mapped back to its typed ErrOverload. Nested statements
// (subqueries, Run dispatching to ExplainAnalyze) pass through here too
// — they are already admitted, their spans attach under the outer root,
// and only the outermost call publishes lastTrace.
func (e *Engine) instrument(ctx context.Context, text string) (context.Context, func(error) error, error) {
	id := e.qlog.Begin(text)
	var sess *admission.Session
	if ctrl := e.admit.Load(); ctrl != nil && admission.SessionFrom(ctx) == nil {
		actx, s, err := ctrl.Admit(ctx, admission.TenantFrom(ctx))
		if err != nil {
			e.qlog.Finish(id, err, nil)
			return ctx, nil, err
		}
		ctx, sess = actx, s
	}
	tr := obs.TraceFrom(ctx)
	owned := false
	if tr == nil && (e.tracing.Load() || e.qlog.IsSampled(id)) {
		// A structured-log sample forces a trace even when interactive
		// tracing is off, so the emitted record carries phase and
		// per-source breakdowns; only the interactive toggle publishes
		// the trace to \trace.
		tr = obs.NewTrace(text)
		ctx = obs.WithTrace(ctx, tr)
		owned = e.tracing.Load()
	}
	var root *obs.Span
	if tr != nil {
		ctx, root = obs.StartSpan(ctx, obs.SpanQuery, text)
	}
	sctx := ctx
	return ctx, func(err error) error {
		err = admission.ResolveErr(sctx, err)
		if err != nil {
			root.SetAttr("error", err.Error())
		}
		root.End()
		if owned {
			e.lastTrace.Store(tr)
		}
		e.qlog.Finish(id, err, tr)
		sess.Release()
		return err
	}, nil
}

// Catalog exposes the global catalog for registration and mapping.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Coordinator exposes the transaction coordinator (decision log access).
func (e *Engine) Coordinator() *txn.Coordinator { return e.coord }

// PlanOptions returns the engine's optimizer options (mutable; used by
// the harness to toggle rules between runs).
func (e *Engine) PlanOptions() *plan.Options { return e.opts }

// Result is a materialized query result. Partial, set only when the
// engine runs with partial results enabled, describes source branches
// that failed and were degraded to empty contributions; it is nil for a
// complete result.
type Result struct {
	Columns []string
	Schema  *types.Schema
	Rows    []types.Row
	Partial *resilience.PartialResultError
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		writePadded(&b, c, widths[i])
	}
	b.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			writePadded(&b, s, widths[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// writePadded left-aligns s in a field of the given width.
func writePadded(b *strings.Builder, s string, width int) {
	b.WriteString(s)
	for n := width - len(s); n > 0; n-- {
		b.WriteByte(' ')
	}
}

// Query parses, plans, and executes a SELECT, materializing the result.
func (e *Engine) Query(ctx context.Context, text string, params ...types.Value) (res *Result, err error) {
	ctx, finish, err := e.instrument(ctx, text)
	if err != nil {
		return nil, err
	}
	defer func() { err = finish(err) }()
	stmt, err := e.parse(ctx, text, params...)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: Query requires a SELECT; use Exec for %T", stmt)
	}
	return e.runSelect(ctx, sel)
}

// parse wraps sql.Parse in a parse span.
func (e *Engine) parse(ctx context.Context, text string, params ...types.Value) (sql.Statement, error) {
	_, span := obs.StartSpan(ctx, obs.SpanParse, "")
	stmt, err := sql.Parse(text, params...)
	span.End()
	return stmt, err
}

// QueryIter plans and executes a SELECT, streaming rows. The returned
// schema describes the stream.
func (e *Engine) QueryIter(ctx context.Context, text string, params ...types.Value) (*types.Schema, source.RowIter, error) {
	ctx, finish, err := e.instrument(ctx, text)
	if err != nil {
		return nil, nil, err
	}
	var outc *resilience.Outcomes
	if e.partial.Load() && resilience.OutcomesFrom(ctx) == nil {
		ctx, outc = resilience.WithOutcomes(ctx)
	}
	_, pspan := obs.StartSpan(ctx, obs.SpanParse, "")
	sel, err := sql.ParseSelect(text, params...)
	pspan.End()
	if err != nil {
		return nil, nil, finish(err)
	}
	p, err := e.planSelect(ctx, sel)
	if err != nil {
		return nil, nil, finish(err)
	}
	it, err := exec.Run(ctx, p)
	if err != nil {
		return nil, nil, finish(err)
	}
	// The statement is live until the stream is closed.
	return p.Schema(), &finishIter{ctx: ctx, in: it, fn: finish, outc: outc, root: obs.CurrentSpan(ctx)}, nil
}

// finishIter completes a streamed statement's instrumentation when the
// consumer closes the stream, and carries the degradation collector for
// streamed partial results.
type finishIter struct {
	ctx  context.Context
	in   source.RowIter
	fn   func(error) error
	outc *resilience.Outcomes
	root *obs.Span // statement root span; rows_out is set at close
	rows int64
	done bool
}

func (f *finishIter) Next() (types.Row, error) {
	r, err := f.in.Next()
	if err == nil {
		f.rows++
	} else if err == io.EOF {
		// A stream where every fan-out branch degraded answered nothing;
		// surface that as the failure it is rather than an empty result.
		if pre := f.outc.Partial(); pre != nil && pre.AllFailed() {
			return nil, pre
		}
	} else {
		// A memory-quota abort cancels the stream's context; surface the
		// typed overload error instead of the bare cancellation.
		err = admission.ResolveErr(f.ctx, err)
	}
	return r, err
}

// Partial returns the partial-result description once the stream has
// ended, or nil when the result is complete (or degradation is off).
func (f *finishIter) Partial() *resilience.PartialResultError {
	return f.outc.Partial()
}

func (f *finishIter) Close() error {
	err := f.in.Close()
	if !f.done {
		f.done = true
		f.root.SetInt("rows_out", f.rows)
		if pre := f.outc.Partial(); pre != nil {
			f.root.SetAttr("partial", pre.Error())
		}
		err = f.fn(err)
	}
	return err
}

func (e *Engine) runSelect(ctx context.Context, sel *sql.SelectStmt) (*Result, error) {
	// Arm the degradation collector once per top-level statement: nested
	// runSelect calls (subqueries) find it already in the context and
	// record into it, so a degraded subquery surfaces on the outer
	// statement's result instead of vanishing with the inner one.
	var outc *resilience.Outcomes
	if e.partial.Load() && resilience.OutcomesFrom(ctx) == nil {
		ctx, outc = resilience.WithOutcomes(ctx)
	}
	p, err := e.planSelect(ctx, sel)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Collect(ctx, p)
	if err != nil {
		return nil, err
	}
	schema := p.Schema()
	cols := make([]string, schema.Len())
	for i, c := range schema.Columns {
		cols[i] = c.Name
	}
	res := &Result{Columns: cols, Schema: schema, Rows: rows}
	if pre := outc.Partial(); pre != nil {
		if pre.AllFailed() {
			// Nothing answered: that is a failed query, not a result.
			return nil, pre
		}
		mPartialQueries.Inc()
		res.Partial = pre
	}
	if root := obs.CurrentSpan(ctx); root != nil {
		root.SetInt("rows_out", int64(len(rows)))
		if res.Partial != nil {
			root.SetAttr("partial", res.Partial.Error())
		}
	}
	return res, nil
}

// planSelect materializes subqueries and produces an optimized plan.
func (e *Engine) planSelect(ctx context.Context, sel *sql.SelectStmt) (plan.Node, error) {
	rctx, rspan := obs.StartSpan(ctx, obs.SpanResolve, "")
	err := e.materializeSubqueries(rctx, sel)
	var logical plan.Node
	if err == nil {
		logical, err = plan.NewBuilder(e.cat).BuildSelect(sel)
	}
	rspan.End()
	if err != nil {
		return nil, err
	}
	octx, ospan := obs.StartSpan(ctx, obs.SpanOptimize, "")
	n, err := plan.Optimize(octx, logical, e.cat, e.opts)
	ospan.End()
	return n, err
}

// Explain returns the optimized plan of a statement as indented text.
func (e *Engine) Explain(ctx context.Context, text string, params ...types.Value) (string, error) {
	stmt, err := sql.Parse(text, params...)
	if err != nil {
		return "", err
	}
	if ex, ok := stmt.(*sql.ExplainStmt); ok {
		stmt = ex.Stmt
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return "", fmt.Errorf("core: EXPLAIN supports SELECT statements")
	}
	p, err := e.planSelect(ctx, sel)
	if err != nil {
		return "", err
	}
	return plan.Explain(p), nil
}

// Run executes any statement: SELECT returns a Result; INSERT, UPDATE
// and DELETE return the affected-row count in a single-column Result.
func (e *Engine) Run(ctx context.Context, text string, params ...types.Value) (res *Result, err error) {
	ctx, finish, err := e.instrument(ctx, text)
	if err != nil {
		return nil, err
	}
	defer func() { err = finish(err) }()
	stmt, err := e.parse(ctx, text, params...)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return e.runSelect(ctx, s)
	case *sql.ExplainStmt:
		var out string
		if s.Analyze {
			out, err = e.ExplainAnalyze(ctx, s.Stmt.String())
		} else {
			out, err = e.Explain(ctx, text)
		}
		if err != nil {
			return nil, err
		}
		var rows []types.Row
		for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
			rows = append(rows, types.Row{types.NewString(line)})
		}
		return &Result{
			Columns: []string{"plan"},
			Schema:  types.NewSchema(types.Column{Name: "plan", Type: types.KindString}),
			Rows:    rows,
		}, nil
	default:
		n, err := e.execStmt(ctx, stmt)
		if err != nil {
			return nil, err
		}
		return &Result{
			Columns: []string{"affected"},
			Schema:  types.NewSchema(types.Column{Name: "affected", Type: types.KindInt}),
			Rows:    []types.Row{{types.NewInt(n)}},
		}, nil
	}
}

// Exec executes a write statement (INSERT/UPDATE/DELETE) and returns the
// number of affected rows. Writes spanning several sources run under
// two-phase commit.
func (e *Engine) Exec(ctx context.Context, text string, params ...types.Value) (n int64, err error) {
	ctx, finish, err := e.instrument(ctx, text)
	if err != nil {
		return 0, err
	}
	defer func() { err = finish(err) }()
	stmt, err := e.parse(ctx, text, params...)
	if err != nil {
		return 0, err
	}
	return e.execStmt(ctx, stmt)
}

// Analyze collects optimizer statistics for every fragment of every
// global table: from the source's stats provider when available, else by
// scanning the remote table.
func (e *Engine) Analyze(ctx context.Context) error {
	for _, name := range e.cat.Tables() {
		if err := ctx.Err(); err != nil {
			return err
		}
		tab, err := e.cat.Table(name)
		if err != nil {
			return err
		}
		for _, frag := range tab.Fragments {
			if err := ctx.Err(); err != nil {
				return err
			}
			src, err := e.cat.Source(frag.Source)
			if err != nil {
				return err
			}
			if sp, ok := src.(interface {
				Stats(table string) (*stats.TableStats, error)
			}); ok {
				ts, err := sp.Stats(frag.RemoteTable)
				if err == nil {
					frag.SetStats(ts)
					continue
				}
			}
			// Fallback: full scan and collect at the mediator.
			it, err := src.Execute(ctx, source.NewScan(frag.RemoteTable))
			if err != nil {
				return fmt.Errorf("core: analyze %s.%s: %w", frag.Source, frag.RemoteTable, err)
			}
			rows, err := source.Drain(it)
			if err != nil {
				return fmt.Errorf("core: analyze %s.%s: %w", frag.Source, frag.RemoteTable, err)
			}
			frag.SetStats(stats.Collect(rows, frag.Info().Schema.Len()))
		}
	}
	return nil
}

// materializeSubqueries executes every uncorrelated subquery in the
// statement and substitutes its result: EXISTS → boolean constant,
// scalar → value constant, IN → literal list. Correlated subqueries are
// rejected (binding the inner query against the global schema alone
// fails, surfacing a clear error).
func (e *Engine) materializeSubqueries(ctx context.Context, sel *sql.SelectStmt) error {
	for cur := sel; cur != nil; cur = cur.Union {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Derived tables first (they may contain subqueries).
		if cur.From != nil {
			if err := e.materializeFromSubqueries(ctx, cur.From); err != nil {
				return err
			}
		}
		var err error
		if cur.Where != nil {
			cur.Where, err = e.substituteSubqueries(ctx, cur.Where)
			if err != nil {
				return err
			}
		}
		if cur.Having != nil {
			cur.Having, err = e.substituteSubqueries(ctx, cur.Having)
			if err != nil {
				return err
			}
		}
		for i := range cur.Items {
			if err := ctx.Err(); err != nil {
				return err
			}
			if cur.Items[i].Expr == nil {
				continue
			}
			cur.Items[i].Expr, err = e.substituteSubqueries(ctx, cur.Items[i].Expr)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Engine) materializeFromSubqueries(ctx context.Context, t sql.TableExpr) error {
	switch n := t.(type) {
	case *sql.SubqueryTable:
		return e.materializeSubqueries(ctx, n.Select)
	case *sql.JoinExpr:
		if err := e.materializeFromSubqueries(ctx, n.L); err != nil {
			return err
		}
		return e.materializeFromSubqueries(ctx, n.R)
	default:
		return nil
	}
}

func (e *Engine) substituteSubqueries(ctx context.Context, ex expr.Expr) (expr.Expr, error) {
	var firstErr error
	out := expr.Transform(ex, func(n expr.Expr) expr.Expr {
		sub, ok := n.(*expr.Subquery)
		if !ok || firstErr != nil {
			return n
		}
		inner, ok := sub.Stmt.(*sql.SelectStmt)
		if !ok {
			firstErr = fmt.Errorf("core: malformed subquery node")
			return n
		}
		res, err := e.runSelect(ctx, inner)
		if err != nil {
			firstErr = fmt.Errorf("core: subquery: %w", err)
			return n
		}
		switch sub.Mode {
		case expr.SubExists:
			return expr.NewConst(types.NewBool((len(res.Rows) > 0) != sub.Negate))
		case expr.SubScalar:
			if len(res.Rows) > 1 {
				firstErr = fmt.Errorf("core: scalar subquery returned %d rows", len(res.Rows))
				return n
			}
			if len(res.Rows) == 0 {
				return expr.NewConst(types.Null)
			}
			if len(res.Rows[0]) != 1 {
				firstErr = fmt.Errorf("core: scalar subquery returned %d columns", len(res.Rows[0]))
				return n
			}
			return expr.NewConst(res.Rows[0][0])
		case expr.SubIn:
			list := make([]expr.Expr, 0, len(res.Rows))
			for _, r := range res.Rows {
				if len(r) != 1 {
					firstErr = fmt.Errorf("core: IN subquery must return one column, got %d", len(r))
					return n
				}
				list = append(list, expr.NewConst(r[0]))
			}
			if len(list) == 0 {
				// x IN (empty) is FALSE; NOT IN (empty) is TRUE.
				return expr.NewConst(types.NewBool(sub.Negate))
			}
			return &expr.InList{E: sub.Operand, List: list, Negate: sub.Negate}
		default:
			firstErr = fmt.Errorf("core: unknown subquery mode %d", sub.Mode)
			return n
		}
	})
	return out, firstErr
}

// ApplyConfig loads a JSON federation description (catalog.Config) into
// the engine: it dials every listed source over the wire protocol and
// defines the global tables. ctx bounds the remote metadata fetches
// performed while mapping fragments. Used by tools; library callers
// usually register sources directly.
func (e *Engine) ApplyConfig(ctx context.Context, data []byte, dial func(context.Context, catalog.SourceConfig) (source.Source, error)) error {
	cfg, err := catalog.ParseConfig(data)
	if err != nil {
		return err
	}
	for _, sc := range cfg.Sources {
		if err := ctx.Err(); err != nil {
			return err
		}
		if dial == nil {
			return fmt.Errorf("core: config lists sources but no dialer was supplied")
		}
		src, err := dial(ctx, sc)
		if err != nil {
			return fmt.Errorf("core: dialing source %s (%s): %w", sc.Name, sc.Addr, err)
		}
		if err := e.cat.AddSource(src); err != nil {
			return err
		}
	}
	return e.cat.Apply(ctx, cfg, sql.ParseExpr)
}

// CreateView registers a named view after validating that its body
// parses and plans against the current catalog. Views expand wherever
// their name appears in FROM; expression subqueries inside view bodies
// are not supported.
func (e *Engine) CreateView(name, selectSQL string) error {
	sel, err := sql.ParseSelect(selectSQL)
	if err != nil {
		return fmt.Errorf("core: view %s: %w", name, err)
	}
	// Validate by planning the body before defining the name (this also
	// rejects self-reference: the name does not resolve yet).
	if _, err := plan.NewBuilder(e.cat).BuildSelect(sel); err != nil {
		return fmt.Errorf("core: view %s does not plan: %w", name, err)
	}
	return e.cat.DefineView(name, selectSQL)
}

// ExplainAnalyze plans AND executes a SELECT, returning the plan
// annotated with each operator's measured row count and inclusive time,
// followed by the total.
func (e *Engine) ExplainAnalyze(ctx context.Context, text string, params ...types.Value) (out string, err error) {
	ctx, finish, err := e.instrument(ctx, text)
	if err != nil {
		return "", err
	}
	defer func() { err = finish(err) }()
	stmt, err := e.parse(ctx, text, params...)
	if err != nil {
		return "", err
	}
	if ex, ok := stmt.(*sql.ExplainStmt); ok {
		stmt = ex.Stmt
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return "", fmt.Errorf("core: EXPLAIN ANALYZE supports SELECT statements")
	}
	p, err := e.planSelect(ctx, sel)
	if err != nil {
		return "", err
	}
	prof := exec.NewProfile()
	start := time.Now()
	rows, err := exec.Collect(exec.WithProfile(ctx, prof), p)
	if err != nil {
		return "", err
	}
	out = plan.ExplainFunc(p, prof.Annotate)
	out += fmt.Sprintf("total: %d row(s) in %s\n", len(rows), time.Since(start).Round(time.Microsecond))
	return out, nil
}
