package core

import (
	"context"
	"strings"
	"testing"

	"gis/internal/catalog"
	"gis/internal/relstore"
	"gis/internal/source"
	"gis/internal/types"
)

// newMediatedEngine maps a legacy store (codes + imperial units) onto a
// clean global table, exercising every write-path translation.
//
// Global:  items(id INT, status STRING, weight_kg FLOAT, site STRING)
// Remote:  legacy.t(id INT, st STRING codes A/I, lbs FLOAT)
func newMediatedEngine(t *testing.T) (*Engine, *relstore.Store) {
	t.Helper()
	legacy := relstore.New("legacy")
	if err := legacy.CreateTable("t", types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "st", Type: types.KindString},
		types.Column{Name: "lbs", Type: types.KindFloat},
	), 0); err != nil {
		t.Fatal(err)
	}
	e := New()
	if err := e.Catalog().AddSource(legacy); err != nil {
		t.Fatal(err)
	}
	global := types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "status", Type: types.KindString},
		types.Column{Name: "weight_kg", Type: types.KindFloat},
		types.Column{Name: "site", Type: types.KindString},
	)
	if err := e.Catalog().DefineTable("items", global); err != nil {
		t.Fatal(err)
	}
	site := types.NewString("legacy")
	if err := e.Catalog().MapFragment(context.Background(), "items", &catalog.Fragment{
		Source: "legacy", RemoteTable: "t",
		Columns: []catalog.ColumnMapping{
			{RemoteCol: 0},
			{RemoteCol: 1, ValueMap: map[string]string{"A": "active", "I": "inactive"}},
			{RemoteCol: 2, Scale: 0.453592},
			{RemoteCol: -1, Const: &site},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return e, legacy
}

func TestInsertThroughMappings(t *testing.T) {
	e, legacy := newMediatedEngine(t)
	n, err := e.Exec(ctx, "INSERT INTO items (id, status, weight_kg) VALUES (1, 'active', 45.3592)")
	if err != nil || n != 1 {
		t.Fatalf("insert = %d, %v", n, err)
	}
	// The remote row stores the inverse representation.
	st, err := legacy.Stats("t")
	if err != nil || st.RowCount != 1 {
		t.Fatalf("remote rows = %v, %v", st, err)
	}
	res := query(t, e, "SELECT status, weight_kg, site FROM items WHERE id = 1")
	row := res.Rows[0]
	if row[0].Str() != "active" || row[2].Str() != "legacy" {
		t.Errorf("read-back = %v", row)
	}
	if kg := row[1].Float(); kg < 45.35 || kg > 45.37 {
		t.Errorf("weight round trip = %v", kg)
	}
	// Remote representation is really pounds and codes.
	raw := queryRemote(t, legacy)
	if raw[0][1].Str() != "A" {
		t.Errorf("remote code = %v, want A", raw[0][1])
	}
	if lbs := raw[0][2].Float(); lbs < 99.9 || lbs > 100.1 {
		t.Errorf("remote lbs = %v, want ~100", lbs)
	}
}

func queryRemote(t *testing.T, s *relstore.Store) []types.Row {
	t.Helper()
	it, err := s.Execute(ctx, source.NewScan("t"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := source.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestInsertConflictingConstRejected(t *testing.T) {
	e, _ := newMediatedEngine(t)
	// site is fixed to 'legacy' by the mapping; storing another value
	// would silently change on read-back, so it must be rejected.
	if _, err := e.Exec(ctx, "INSERT INTO items (id, status, weight_kg, site) VALUES (1, 'active', 1, 'other')"); err == nil {
		t.Error("conflicting constant column must be rejected")
	}
	// Matching or NULL const value is fine.
	if _, err := e.Exec(ctx, "INSERT INTO items (id, status, weight_kg, site) VALUES (2, 'active', 1, 'legacy')"); err != nil {
		t.Errorf("matching constant rejected: %v", err)
	}
}

func TestUpdateThroughMappings(t *testing.T) {
	e, legacy := newMediatedEngine(t)
	if _, err := e.Exec(ctx, "INSERT INTO items (id, status, weight_kg) VALUES (1, 'active', 10)"); err != nil {
		t.Fatal(err)
	}
	// Value-mapped SET: status 'inactive' becomes code 'I' remotely.
	n, err := e.Exec(ctx, "UPDATE items SET status = 'inactive' WHERE id = 1")
	if err != nil || n != 1 {
		t.Fatalf("update = %d, %v", n, err)
	}
	raw := queryRemote(t, legacy)
	if raw[0][1].Str() != "I" {
		t.Errorf("remote code after update = %v", raw[0][1])
	}
	// Affine SET with a constant: 20 kg becomes ~44.1 lbs remotely.
	if _, err := e.Exec(ctx, "UPDATE items SET weight_kg = 20 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	raw = queryRemote(t, legacy)
	if lbs := raw[0][2].Float(); lbs < 44 || lbs > 44.2 {
		t.Errorf("remote lbs after update = %v", lbs)
	}
	// Value-mapped predicate translates too.
	res := query(t, e, "SELECT COUNT(*) FROM items WHERE status = 'inactive'")
	wantRows(t, res, false, "(1)")
	// SET of a constant-mapped column is rejected.
	if _, err := e.Exec(ctx, "UPDATE items SET site = 'x'"); err == nil {
		t.Error("updating a constant-mapped column must fail")
	}
	// Computed SET over a transformed column is not translatable.
	if _, err := e.Exec(ctx, "UPDATE items SET weight_kg = weight_kg * 2"); err == nil {
		t.Error("computed update over an affine column must fail clearly")
	}
}

func TestDeleteThroughMappings(t *testing.T) {
	e, legacy := newMediatedEngine(t)
	for _, stmt := range []string{
		"INSERT INTO items (id, status, weight_kg) VALUES (1, 'active', 10)",
		"INSERT INTO items (id, status, weight_kg) VALUES (2, 'inactive', 20)",
	} {
		if _, err := e.Exec(ctx, stmt); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.Exec(ctx, "DELETE FROM items WHERE status = 'inactive'")
	if err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	raw := queryRemote(t, legacy)
	if len(raw) != 1 || raw[0][0].Int() != 1 {
		t.Errorf("remaining = %v", raw)
	}
}

func TestIdentityUpdateWithExpression(t *testing.T) {
	// Identity-mapped columns accept computed SET values.
	e := newTestEngine(t)
	n, err := e.Exec(ctx, "UPDATE customers SET balance = balance * 2 + 1 WHERE id = 1")
	if err != nil || n != 1 {
		t.Fatalf("update = %d, %v", n, err)
	}
	res := query(t, e, "SELECT balance FROM customers WHERE id = 1")
	wantRows(t, res, false, "(201)")
}

func TestInsertParamsAndMultiRow(t *testing.T) {
	e := newTestEngine(t)
	n, err := e.Exec(ctx,
		"INSERT INTO customers (id, name, region, balance) VALUES (?, ?, 'east', ?), (?, 'greg', 'west', 1)",
		types.NewInt(50), types.NewString("fred"), types.NewFloat(7),
		types.NewInt(51))
	if err != nil || n != 2 {
		t.Fatalf("insert = %d, %v", n, err)
	}
	res := query(t, e, "SELECT name FROM customers WHERE id >= 50")
	wantRows(t, res, false, "(fred)", "(greg)")
}

func TestWriteErrorMessagesAreActionable(t *testing.T) {
	e, _ := newMediatedEngine(t)
	_, err := e.Exec(ctx, "UPDATE items SET site = 'x'")
	if err == nil || !strings.Contains(err.Error(), "constant-mapped") {
		t.Errorf("error should explain the constant mapping: %v", err)
	}
}
