package stats

import (
	"math"
	"testing"

	"gis/internal/expr"
	"gis/internal/types"
)

// mkRows builds rows of (id INT ascending, cat STRING cycling, val FLOAT).
func mkRows(n int) []types.Row {
	cats := []string{"a", "b", "c", "d"}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewString(cats[i%len(cats)]),
			types.NewFloat(float64(i) / 2),
		}
	}
	return rows
}

var statSchema = types.NewSchema(
	types.Column{Name: "id", Type: types.KindInt},
	types.Column{Name: "cat", Type: types.KindString},
	types.Column{Name: "val", Type: types.KindFloat},
)

func bindPred(t *testing.T, e expr.Expr) expr.Expr {
	t.Helper()
	b, err := expr.Bind(e, statSchema)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCollectBasics(t *testing.T) {
	ts := Collect(mkRows(100), 3)
	if ts.RowCount != 100 {
		t.Errorf("RowCount = %d", ts.RowCount)
	}
	if ts.Columns[0].NDV != 100 {
		t.Errorf("id NDV = %d, want 100", ts.Columns[0].NDV)
	}
	if ts.Columns[1].NDV != 4 {
		t.Errorf("cat NDV = %d, want 4", ts.Columns[1].NDV)
	}
	if ts.Columns[0].Min.Int() != 0 || ts.Columns[0].Max.Int() != 99 {
		t.Errorf("id range = %v..%v", ts.Columns[0].Min, ts.Columns[0].Max)
	}
	if ts.Columns[0].Hist == nil {
		t.Error("histogram missing")
	}
}

func TestCollectNulls(t *testing.T) {
	rows := []types.Row{
		{types.NewInt(1)}, {types.Null}, {types.Null},
	}
	ts := Collect(rows, 1)
	if ts.Columns[0].NullCount != 2 || ts.Columns[0].NDV != 1 {
		t.Errorf("stats = %+v", ts.Columns[0])
	}
}

func TestHistogramFracLE(t *testing.T) {
	vals := make([]types.Value, 1000)
	for i := range vals {
		vals[i] = types.NewInt(int64(i))
	}
	h := BuildHistogram(vals, 10)
	if h.Total != 1000 || len(h.Bounds) != 10 {
		t.Fatalf("hist = %+v", h)
	}
	cases := []struct {
		v    int64
		want float64
		tol  float64
	}{
		{-5, 0, 0.06},
		{499, 0.5, 0.06},
		{999, 1.0, 0.001},
		{5000, 1.0, 0.001},
	}
	for _, c := range cases {
		got := h.FracLE(types.NewInt(c.v))
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("FracLE(%d) = %v, want ~%v", c.v, got, c.want)
		}
	}
}

func TestBuildHistogramEdge(t *testing.T) {
	if BuildHistogram(nil, 8) != nil {
		t.Error("empty histogram must be nil")
	}
	h := BuildHistogram([]types.Value{types.NewInt(5)}, 8)
	if h == nil || h.Total != 1 || len(h.Bounds) != 1 {
		t.Errorf("singleton hist = %+v", h)
	}
}

func TestSelectivityEquality(t *testing.T) {
	ts := Collect(mkRows(100), 3)
	p := bindPred(t, expr.NewBinary(expr.OpEq, expr.NewColRef("", "cat"), expr.NewConst(types.NewString("a"))))
	got := Selectivity(p, ts)
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("eq selectivity = %v, want 0.25 (1/NDV)", got)
	}
	// Commuted const = col.
	p = bindPred(t, expr.NewBinary(expr.OpEq, expr.NewConst(types.NewString("a")), expr.NewColRef("", "cat")))
	if got := Selectivity(p, ts); math.Abs(got-0.25) > 0.01 {
		t.Errorf("commuted eq selectivity = %v", got)
	}
}

func TestSelectivityRange(t *testing.T) {
	ts := Collect(mkRows(100), 3)
	p := bindPred(t, expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(25))))
	got := Selectivity(p, ts)
	if math.Abs(got-0.25) > 0.06 {
		t.Errorf("range selectivity = %v, want ~0.25", got)
	}
	p = bindPred(t, expr.NewBinary(expr.OpGe, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(75))))
	got = Selectivity(p, ts)
	if math.Abs(got-0.25) > 0.06 {
		t.Errorf("range selectivity = %v, want ~0.25", got)
	}
}

func TestSelectivityConjunctionDisjunction(t *testing.T) {
	ts := Collect(mkRows(100), 3)
	a := expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(50)))
	b := expr.NewBinary(expr.OpEq, expr.NewColRef("", "cat"), expr.NewConst(types.NewString("a")))
	and := bindPred(t, expr.NewBinary(expr.OpAnd, a, b))
	or := bindPred(t, expr.NewBinary(expr.OpOr, a, b))
	sAnd, sOr := Selectivity(and, ts), Selectivity(or, ts)
	if math.Abs(sAnd-0.125) > 0.03 {
		t.Errorf("AND selectivity = %v, want ~0.125", sAnd)
	}
	if math.Abs(sOr-(0.5+0.25-0.125)) > 0.05 {
		t.Errorf("OR selectivity = %v, want ~0.625", sOr)
	}
	if sAnd > sOr {
		t.Error("AND must be more selective than OR")
	}
}

func TestSelectivityNotAndNull(t *testing.T) {
	rows := mkRows(100)
	// Make 20 nulls in val.
	for i := 0; i < 20; i++ {
		rows[i][2] = types.Null
	}
	ts := Collect(rows, 3)
	isn := bindPred(t, &expr.IsNull{E: expr.NewColRef("", "val")})
	if got := Selectivity(isn, ts); math.Abs(got-0.2) > 0.01 {
		t.Errorf("IS NULL = %v, want 0.2", got)
	}
	notNull := bindPred(t, &expr.IsNull{E: expr.NewColRef("", "val"), Negate: true})
	if got := Selectivity(notNull, ts); math.Abs(got-0.8) > 0.01 {
		t.Errorf("IS NOT NULL = %v, want 0.8", got)
	}
	not := bindPred(t, expr.NewUnary(expr.OpNot,
		expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(50)))))
	if got := Selectivity(not, ts); math.Abs(got-0.5) > 0.06 {
		t.Errorf("NOT range = %v, want ~0.5", got)
	}
}

func TestSelectivityInList(t *testing.T) {
	ts := Collect(mkRows(100), 3)
	in := bindPred(t, &expr.InList{
		E:    expr.NewColRef("", "cat"),
		List: []expr.Expr{expr.NewConst(types.NewString("a")), expr.NewConst(types.NewString("b"))},
	})
	if got := Selectivity(in, ts); math.Abs(got-0.5) > 0.05 {
		t.Errorf("IN(2 of 4) = %v, want ~0.5", got)
	}
}

func TestSelectivityBounds(t *testing.T) {
	ts := Collect(mkRows(10), 3)
	preds := []expr.Expr{
		bindPred(t, expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(-100)))),
		bindPred(t, expr.NewBinary(expr.OpGt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(1000)))),
		bindPred(t, expr.NewConst(types.NewBool(true))),
		bindPred(t, expr.NewConst(types.NewBool(false))),
		nil,
	}
	for _, p := range preds {
		s := Selectivity(p, ts)
		if s < 0 || s > 1 {
			t.Errorf("selectivity out of bounds: %v for %v", s, p)
		}
	}
	if Selectivity(nil, ts) != 1 {
		t.Error("nil predicate must have selectivity 1")
	}
	if Selectivity(bindPred(t, expr.NewConst(types.NewBool(false))), ts) != 0 {
		t.Error("FALSE must have selectivity 0")
	}
}

func TestSelectivityUnknownStats(t *testing.T) {
	p := bindPred(t, expr.NewBinary(expr.OpEq, expr.NewColRef("", "cat"), expr.NewConst(types.NewString("a"))))
	s := Selectivity(p, Unknown(3, 1000))
	if s != DefaultEqSel {
		t.Errorf("unknown eq = %v, want default %v", s, DefaultEqSel)
	}
	if s := Selectivity(p, nil); s <= 0 || s > 1 {
		t.Errorf("nil stats selectivity = %v", s)
	}
}

func TestJoinCardinality(t *testing.T) {
	l := Collect(mkRows(1000), 3)
	r := Collect(mkRows(100), 3)
	// Join on id: ndv(l)=1000, ndv(r)=100 → 1000*100/1000 = 100.
	got := JoinCardinality(l, r, 0, 0)
	if math.Abs(got-100) > 1 {
		t.Errorf("join card = %v, want 100", got)
	}
	// Join on cat: ndv=4 both → 1000*100/4 = 25000.
	got = JoinCardinality(l, r, 1, 1)
	if math.Abs(got-25000) > 1 {
		t.Errorf("join card = %v, want 25000", got)
	}
	// Unknown stats fall back to something sane.
	if got := JoinCardinality(nil, nil, 0, 0); got <= 0 {
		t.Errorf("unknown join card = %v", got)
	}
}

func TestMergeFragments(t *testing.T) {
	a := Collect(mkRows(50), 3)
	b := Collect(mkRows(50), 3)
	m := Merge(a, b)
	if m.RowCount != 100 {
		t.Errorf("merged rows = %d", m.RowCount)
	}
	// NDV heuristic: max + min/2 = 50 + 25 = 75 for id.
	if m.Columns[0].NDV != 75 {
		t.Errorf("merged NDV = %d, want 75", m.Columns[0].NDV)
	}
	if m.Columns[0].Min.Int() != 0 || m.Columns[0].Max.Int() != 49 {
		t.Errorf("merged range = %v..%v", m.Columns[0].Min, m.Columns[0].Max)
	}
	if Merge(nil, a) == nil || Merge().RowCount != 0 {
		t.Error("merge degenerate cases broken")
	}
	// Merge must not mutate inputs.
	if a.RowCount != 50 {
		t.Error("Merge mutated input")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Collect(mkRows(10), 3)
	c := a.Clone()
	c.RowCount = 999
	c.Columns[0].NDV = 1
	if a.RowCount != 10 || a.Columns[0].NDV != 10 {
		t.Error("Clone shares state")
	}
	var nilStats *TableStats
	if nilStats.Clone() != nil {
		t.Error("nil Clone must be nil")
	}
}
