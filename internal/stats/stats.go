// Package stats implements table and column statistics — row counts,
// distinct-value estimates, min/max, null fractions, and equi-depth
// histograms — plus the selectivity and join-cardinality estimators the
// cost-based optimizer is built on.
package stats

import (
	"fmt"
	"math"
	"sort"

	"gis/internal/expr"
	"gis/internal/types"
)

// DefaultBuckets is the histogram resolution used by Collect.
const DefaultBuckets = 32

// ColumnStats summarizes one column's value distribution.
type ColumnStats struct {
	// NDV is the estimated number of distinct non-null values.
	NDV int64
	// NullCount is the number of NULLs observed.
	NullCount int64
	// Min and Max bound the non-null values; Null when the column was
	// all-NULL or unobserved.
	Min, Max types.Value
	// Hist is an equi-depth histogram over non-null values; nil when
	// too few values were observed.
	Hist *Histogram
}

// TableStats summarizes one table (or table fragment).
type TableStats struct {
	RowCount int64
	Columns  []ColumnStats
}

// Clone deep-copies the stats.
func (t *TableStats) Clone() *TableStats {
	if t == nil {
		return nil
	}
	out := &TableStats{RowCount: t.RowCount, Columns: make([]ColumnStats, len(t.Columns))}
	copy(out.Columns, t.Columns)
	for i := range out.Columns {
		if h := out.Columns[i].Hist; h != nil {
			nh := &Histogram{
				Bounds: append([]types.Value(nil), h.Bounds...),
				Counts: append([]int64(nil), h.Counts...),
				Total:  h.Total,
			}
			out.Columns[i].Hist = nh
		}
	}
	return out
}

// Unknown returns placeholder stats for a table of assumed size when no
// statistics have been collected.
func Unknown(columns int, assumedRows int64) *TableStats {
	return &TableStats{RowCount: assumedRows, Columns: make([]ColumnStats, columns)}
}

// Collect computes full statistics from a materialized table scan.
func Collect(rows []types.Row, width int) *TableStats {
	ts := &TableStats{RowCount: int64(len(rows)), Columns: make([]ColumnStats, width)}
	for c := 0; c < width; c++ {
		var vals []types.Value
		distinct := make(map[uint64][]types.Value)
		cs := &ts.Columns[c]
		for _, r := range rows {
			if c >= len(r) {
				continue
			}
			v := r[c]
			if v.IsNull() {
				cs.NullCount++
				continue
			}
			vals = append(vals, v)
			h := v.Hash(0)
			dup := false
			for _, p := range distinct[h] {
				if p.Equal(v) {
					dup = true
					break
				}
			}
			if !dup {
				distinct[h] = append(distinct[h], v)
				cs.NDV++
			}
			if cs.Min.IsNull() || v.Compare(cs.Min) < 0 {
				cs.Min = v
			}
			if cs.Max.IsNull() || v.Compare(cs.Max) > 0 {
				cs.Max = v
			}
		}
		if len(vals) >= 2 {
			cs.Hist = BuildHistogram(vals, DefaultBuckets)
		}
	}
	return ts
}

// Merge combines statistics of disjoint fragments of the same table
// (horizontal partitions). NDV merging is approximate: it takes the max
// (lower bound) plus half the remainder, a standard heuristic.
func Merge(parts ...*TableStats) *TableStats {
	var out *TableStats
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			out = p.Clone()
			continue
		}
		out.RowCount += p.RowCount
		for i := range out.Columns {
			if i >= len(p.Columns) {
				break
			}
			a, b := &out.Columns[i], p.Columns[i]
			a.NullCount += b.NullCount
			maxNDV := a.NDV
			minNDV := b.NDV
			if b.NDV > maxNDV {
				maxNDV, minNDV = b.NDV, a.NDV
			}
			a.NDV = maxNDV + minNDV/2
			if a.Min.IsNull() || (!b.Min.IsNull() && b.Min.Compare(a.Min) < 0) {
				a.Min = b.Min
			}
			if a.Max.IsNull() || (!b.Max.IsNull() && b.Max.Compare(a.Max) > 0) {
				a.Max = b.Max
			}
			// Histograms of fragments are not merged (bounds differ);
			// estimation falls back to min/max interpolation.
			a.Hist = nil
		}
	}
	if out == nil {
		return &TableStats{}
	}
	return out
}

// Histogram is an equi-depth histogram: Bounds[i] is the upper bound of
// bucket i (inclusive); Counts[i] is the number of values in it.
type Histogram struct {
	Bounds []types.Value
	Counts []int64
	Total  int64
}

// BuildHistogram sorts a copy of vals and cuts it into ≤ buckets
// equal-count runs.
func BuildHistogram(vals []types.Value, buckets int) *Histogram {
	if len(vals) == 0 || buckets < 1 {
		return nil
	}
	sorted := append([]types.Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	h := &Histogram{Total: int64(len(sorted))}
	per := len(sorted) / buckets
	rem := len(sorted) % buckets
	idx := 0
	for b := 0; b < buckets; b++ {
		n := per
		if b < rem {
			n++
		}
		if n == 0 {
			continue
		}
		idx += n
		h.Bounds = append(h.Bounds, sorted[idx-1])
		h.Counts = append(h.Counts, int64(n))
	}
	return h
}

// FracLE estimates the fraction of values ≤ v.
func (h *Histogram) FracLE(v types.Value) float64 {
	if h == nil || h.Total == 0 {
		return 0.5
	}
	var acc int64
	for i, bound := range h.Bounds {
		if v.Compare(bound) >= 0 {
			acc += h.Counts[i]
			continue
		}
		// v falls inside bucket i: assume half the bucket qualifies.
		acc += h.Counts[i] / 2
		break
	}
	f := float64(acc) / float64(h.Total)
	if f > 1 {
		f = 1
	}
	return f
}

// FracEq estimates the fraction of values equal to v using bucket depth.
func (h *Histogram) FracEq(v types.Value, ndv int64) float64 {
	if h == nil || h.Total == 0 {
		if ndv > 0 {
			return 1 / float64(ndv)
		}
		return 0.1
	}
	lo := h.FracLE(v)
	if ndv > 0 {
		f := 1 / float64(ndv)
		_ = lo
		return f
	}
	return 1 / float64(h.Total)
}

// Default selectivities for predicates the estimator cannot analyze.
const (
	DefaultEqSel    = 0.1
	DefaultRangeSel = 1.0 / 3.0
	DefaultLikeSel  = 0.25
	DefaultSel      = 1.0 / 3.0
)

// Selectivity estimates the fraction of rows satisfying pred over a table
// with the given stats. pred must be bound against the table's schema;
// column references index ts.Columns.
func Selectivity(pred expr.Expr, ts *TableStats) float64 {
	if pred == nil {
		return 1
	}
	switch n := pred.(type) {
	case *expr.Const:
		if n.Val.Kind() == types.KindBool {
			if n.Val.Bool() {
				return 1
			}
			return 0
		}
		return DefaultSel
	case *expr.Binary:
		switch {
		case n.Op == expr.OpAnd:
			return clamp(Selectivity(n.L, ts) * Selectivity(n.R, ts))
		case n.Op == expr.OpOr:
			a, b := Selectivity(n.L, ts), Selectivity(n.R, ts)
			return clamp(a + b - a*b)
		case n.Op.Comparison():
			return comparisonSelectivity(n, ts)
		case n.Op == expr.OpLike:
			return DefaultLikeSel
		}
		return DefaultSel
	case *expr.Unary:
		if n.Op == expr.OpNot {
			return clamp(1 - Selectivity(n.E, ts))
		}
		return DefaultSel
	case *expr.IsNull:
		col, ok := n.E.(*expr.ColRef)
		if !ok || ts == nil || col.Index >= len(ts.Columns) || ts.RowCount == 0 {
			return DefaultEqSel
		}
		f := float64(ts.Columns[col.Index].NullCount) / float64(ts.RowCount)
		if n.Negate {
			f = 1 - f
		}
		return clamp(f)
	case *expr.InList:
		// Each element behaves like an equality; union them.
		per := comparisonSelectivity(&expr.Binary{Op: expr.OpEq, L: n.E, R: expr.NewConst(types.Null)}, ts)
		f := clamp(per * float64(len(n.List)))
		if n.Negate {
			f = 1 - f
		}
		return clamp(f)
	default:
		return DefaultSel
	}
}

func comparisonSelectivity(b *expr.Binary, ts *TableStats) float64 {
	col, colOK := b.L.(*expr.ColRef)
	val, valOK := b.R.(*expr.Const)
	op := b.Op
	if !colOK || !valOK {
		// Try the commuted form (const op col).
		if c2, ok := b.R.(*expr.ColRef); ok {
			if v2, ok2 := b.L.(*expr.Const); ok2 {
				if flipped, can := op.Commutes(); can {
					col, val, op = c2, v2, flipped
					colOK, valOK = true, true
				}
			}
		}
	}
	if !colOK || !valOK || ts == nil || col.Index < 0 || col.Index >= len(ts.Columns) {
		if op == expr.OpEq {
			return DefaultEqSel
		}
		return DefaultRangeSel
	}
	cs := ts.Columns[col.Index]
	switch op {
	case expr.OpEq:
		if cs.NDV > 0 {
			return clamp(1 / float64(cs.NDV))
		}
		return DefaultEqSel
	case expr.OpNe:
		if cs.NDV > 0 {
			return clamp(1 - 1/float64(cs.NDV))
		}
		return 1 - DefaultEqSel
	case expr.OpLe, expr.OpLt:
		return clamp(fracBelow(cs, val.Val))
	case expr.OpGe, expr.OpGt:
		return clamp(1 - fracBelow(cs, val.Val))
	default:
		// Non-comparison operators reach the generic fallback below.
	}
	return DefaultRangeSel
}

// fracBelow estimates P(col <= v) from histogram or min/max interpolation.
func fracBelow(cs ColumnStats, v types.Value) float64 {
	if cs.Hist != nil {
		return cs.Hist.FracLE(v)
	}
	if cs.Min.IsNull() || cs.Max.IsNull() || !v.Kind().Numeric() ||
		!cs.Min.Kind().Numeric() || !cs.Max.Kind().Numeric() {
		return DefaultRangeSel
	}
	lo, hi, x := cs.Min.AsFloat(), cs.Max.AsFloat(), v.AsFloat()
	if hi <= lo {
		if x >= hi {
			return 1
		}
		return 0
	}
	return clamp((x - lo) / (hi - lo))
}

// JoinCardinality estimates |L ⋈ R| on L.lcol = R.rcol using the classic
// containment assumption: |L|·|R| / max(ndv(lcol), ndv(rcol)).
func JoinCardinality(l, r *TableStats, lcol, rcol int) float64 {
	lrows, rrows := rowsOf(l), rowsOf(r)
	ndv := math.Max(ndvOf(l, lcol), ndvOf(r, rcol))
	if ndv < 1 {
		ndv = math.Max(lrows, rrows)
		if ndv < 1 {
			ndv = 1
		}
	}
	return lrows * rrows / ndv
}

func rowsOf(t *TableStats) float64 {
	if t == nil || t.RowCount <= 0 {
		return 1000 // assumption for unknown tables
	}
	return float64(t.RowCount)
}

func ndvOf(t *TableStats, col int) float64 {
	if t == nil || col < 0 || col >= len(t.Columns) || t.Columns[col].NDV <= 0 {
		return 0
	}
	return float64(t.Columns[col].NDV)
}

func clamp(f float64) float64 {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// String renders table stats compactly.
func (t *TableStats) String() string {
	if t == nil {
		return "stats{unknown}"
	}
	return fmt.Sprintf("stats{rows=%d, cols=%d}", t.RowCount, len(t.Columns))
}
