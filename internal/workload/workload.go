// Package workload builds the synthetic federations the evaluation
// harness measures: partitioned tables over local or wire-attached
// sources with simulated WAN links, heterogeneous (value-mapped /
// unit-converted) schemas, capability-restricted wrappers, and
// multi-participant transactional stores. Generation is deterministic
// per seed.
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"gis/internal/admission"
	"gis/internal/catalog"
	"gis/internal/core"
	"gis/internal/docstore"
	"gis/internal/expr"
	"gis/internal/filestore"
	"gis/internal/kvstore"
	"gis/internal/relstore"
	"gis/internal/source"
	"gis/internal/types"
	"gis/internal/wire"
)

// Fixture is a ready federation plus the resources behind it.
type Fixture struct {
	Engine *core.Engine
	// Stores gives direct access to the backing relstores by name.
	Stores map[string]*relstore.Store

	closers []func() error
}

// Close shuts down any wire servers and clients the fixture started.
func (f *Fixture) Close() {
	for i := len(f.closers) - 1; i >= 0; i-- {
		_ = f.closers[i]()
	}
}

// Link describes the simulated WAN link for remote fixtures.
type Link = wire.SimLink

// attach registers a store with the engine either in-process or through
// a TCP wire server with the simulated link.
func (f *Fixture) attach(ctx context.Context, st source.Source, remote bool, link Link) (source.Source, error) {
	if !remote {
		if err := f.Engine.Catalog().AddSource(st); err != nil {
			return nil, err
		}
		return st, nil
	}
	srv, err := wire.Serve(ctx, "127.0.0.1:0", st)
	if err != nil {
		return nil, err
	}
	f.closers = append(f.closers, srv.Close)
	cl, err := wire.DialContext(ctx, srv.Addr(), wire.WithSimLink(link), wire.WithName(st.Name()))
	if err != nil {
		return nil, err
	}
	f.closers = append(f.closers, cl.Close)
	if err := f.Engine.Catalog().AddSource(cl); err != nil {
		return nil, err
	}
	return cl, nil
}

// ordersSchema is the common demo schema.
func ordersSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "oid", Type: types.KindInt},
		types.Column{Name: "cust_id", Type: types.KindInt},
		types.Column{Name: "amount", Type: types.KindFloat},
		types.Column{Name: "region", Type: types.KindString},
	)
}

func customersSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "name", Type: types.KindString},
		types.Column{Name: "segment", Type: types.KindString},
	)
}

var regions = []string{"north", "south", "east", "west"}

// GenOrders produces n deterministic order rows with cust_id drawn from
// [0, custNDV).
func GenOrders(n, custNDV int, seed int64) []types.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(rng.Intn(custNDV))),
			types.NewFloat(float64(rng.Intn(100000)) / 100),
			types.NewString(regions[rng.Intn(len(regions))]),
		}
	}
	return rows
}

// GenCustomers produces n deterministic customer rows.
func GenCustomers(n int, seed int64) []types.Row {
	rng := rand.New(rand.NewSource(seed))
	segments := []string{"retail", "wholesale", "online"}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("cust-%06d", i)),
			types.NewString(segments[rng.Intn(len(segments))]),
		}
	}
	return rows
}

// TwoTable builds the selection/join benchmark federation:
//
//	customers (nCust rows) on source "src_c"
//	orders    (nOrd rows, cust_id ∈ [0,nCust)) on source "src_o"
//
// remote serves both stores over TCP with the given link.
func TwoTable(ctx context.Context, nCust, nOrd int, remote bool, link Link) (*Fixture, error) {
	f := &Fixture{Engine: core.New(), Stores: map[string]*relstore.Store{}}

	cStore := relstore.New("src_c")
	if err := cStore.CreateTable("customers", customersSchema(), 0); err != nil {
		return nil, err
	}
	if _, err := cStore.Insert(ctx, "customers", GenCustomers(nCust, 1)); err != nil {
		return nil, err
	}
	oStore := relstore.New("src_o")
	if err := oStore.CreateTable("orders", ordersSchema(), 0); err != nil {
		return nil, err
	}
	if _, err := oStore.Insert(ctx, "orders", GenOrders(nOrd, max(nCust, 1), 2)); err != nil {
		return nil, err
	}
	f.Stores["src_c"] = cStore
	f.Stores["src_o"] = oStore

	if _, err := f.attach(ctx, cStore, remote, link); err != nil {
		return nil, err
	}
	if _, err := f.attach(ctx, oStore, remote, link); err != nil {
		return nil, err
	}
	cat := f.Engine.Catalog()
	if err := cat.DefineTable("customers", customersSchema()); err != nil {
		return nil, err
	}
	if err := cat.MapSimple(ctx, "customers", "src_c", "customers"); err != nil {
		return nil, err
	}
	if err := cat.DefineTable("orders", ordersSchema()); err != nil {
		return nil, err
	}
	if err := cat.MapSimple(ctx, "orders", "src_o", "orders"); err != nil {
		return nil, err
	}
	if err := f.Engine.Analyze(ctx); err != nil {
		return nil, err
	}
	return f, nil
}

// Partitioned builds a table horizontally split over k sources with
// rowsPer rows each (T4 fan-out).
func Partitioned(ctx context.Context, k, rowsPer int, remote bool, link Link) (*Fixture, error) {
	f := &Fixture{Engine: core.New(), Stores: map[string]*relstore.Store{}}
	cat := f.Engine.Catalog()
	if err := cat.DefineTable("events", ordersSchema()); err != nil {
		return nil, err
	}
	for p := 0; p < k; p++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("part%02d", p)
		st := relstore.New(name)
		if err := st.CreateTable("events", ordersSchema(), 0); err != nil {
			return nil, err
		}
		rows := GenOrders(rowsPer, 1000, int64(100+p))
		// Re-key oids into this partition's range.
		lo := int64(p * rowsPer)
		for i := range rows {
			rows[i][0] = types.NewInt(lo + int64(i))
		}
		if _, err := st.Insert(ctx, "events", rows); err != nil {
			return nil, err
		}
		f.Stores[name] = st
		if _, err := f.attach(ctx, st, remote, link); err != nil {
			return nil, err
		}
		hiBound := lo + int64(rowsPer)
		part := expr.NewBinary(expr.OpAnd,
			expr.NewBinary(expr.OpGe, expr.NewColRef("", "oid"), expr.NewConst(types.NewInt(lo))),
			expr.NewBinary(expr.OpLt, expr.NewColRef("", "oid"), expr.NewConst(types.NewInt(hiBound))))
		if err := cat.MapFragment(ctx, "events", &catalog.Fragment{
			Source: name, RemoteTable: "events",
			Columns: []catalog.ColumnMapping{{RemoteCol: 0}, {RemoteCol: 1}, {RemoteCol: 2}, {RemoteCol: 3}},
			Where:   part,
		}); err != nil {
			return nil, err
		}
	}
	if err := f.Engine.Analyze(ctx); err != nil {
		return nil, err
	}
	return f, nil
}

// Heterogeneous builds two views of the same physical order data: table
// "orders_native" maps identity, "orders_mediated" goes through a value
// map on region, an affine conversion on amount (cents → currency), and
// a constant site column (F5 mediation overhead).
func Heterogeneous(ctx context.Context, nOrd int, remote bool, link Link) (*Fixture, error) {
	f := &Fixture{Engine: core.New(), Stores: map[string]*relstore.Store{}}
	st := relstore.New("legacy")
	// The legacy store keeps region codes and integer cents.
	legacySchema := types.NewSchema(
		types.Column{Name: "oid", Type: types.KindInt},
		types.Column{Name: "cust_id", Type: types.KindInt},
		types.Column{Name: "cents", Type: types.KindFloat},
		types.Column{Name: "rg", Type: types.KindString},
	)
	if err := st.CreateTable("orders", legacySchema, 0); err != nil {
		return nil, err
	}
	rows := GenOrders(nOrd, 1000, 7)
	codes := map[string]string{"north": "N", "south": "S", "east": "E", "west": "W"}
	for i := range rows {
		rows[i][2] = types.NewFloat(rows[i][2].Float() * 100) // cents
		rows[i][3] = types.NewString(codes[rows[i][3].Str()])
	}
	if _, err := st.Insert(ctx, "orders", rows); err != nil {
		return nil, err
	}
	f.Stores["legacy"] = st
	if _, err := f.attach(ctx, st, remote, link); err != nil {
		return nil, err
	}
	cat := f.Engine.Catalog()
	// Native view: identity over the legacy representation.
	if err := cat.DefineTable("orders_native", legacySchema); err != nil {
		return nil, err
	}
	if err := cat.MapSimple(ctx, "orders_native", "legacy", "orders"); err != nil {
		return nil, err
	}
	// Mediated view: currency units, spelled-out regions, site tag.
	site := types.NewString("legacy-dc")
	mediated := types.NewSchema(
		types.Column{Name: "oid", Type: types.KindInt},
		types.Column{Name: "cust_id", Type: types.KindInt},
		types.Column{Name: "amount", Type: types.KindFloat},
		types.Column{Name: "region", Type: types.KindString},
		types.Column{Name: "site", Type: types.KindString},
	)
	if err := cat.DefineTable("orders_mediated", mediated); err != nil {
		return nil, err
	}
	if err := cat.MapFragment(ctx, "orders_mediated", &catalog.Fragment{
		Source: "legacy", RemoteTable: "orders",
		Columns: []catalog.ColumnMapping{
			{RemoteCol: 0},
			{RemoteCol: 1},
			{RemoteCol: 2, Scale: 0.01},
			{RemoteCol: 3, ValueMap: map[string]string{"N": "north", "S": "south", "E": "east", "W": "west"}},
			{RemoteCol: -1, Const: &site},
		},
	}); err != nil {
		return nil, err
	}
	if err := f.Engine.Analyze(ctx); err != nil {
		return nil, err
	}
	return f, nil
}

// Capability builds the same logical order table behind four wrappers of
// descending capability (T8): full SQL (relstore), keyed (kvstore),
// documents (docstore), flat file (filestore). Tables are named
// orders_rel / orders_kv / orders_doc / orders_file.
func Capability(ctx context.Context, nOrd int) (*Fixture, error) {
	f := &Fixture{Engine: core.New(), Stores: map[string]*relstore.Store{}}
	cat := f.Engine.Catalog()
	rows := GenOrders(nOrd, 1000, 11)
	schema := ordersSchema()

	rs := relstore.New("cap_rel")
	if err := rs.CreateTable("orders", schema, 0); err != nil {
		return nil, err
	}
	if _, err := rs.Insert(ctx, "orders", rows); err != nil {
		return nil, err
	}
	f.Stores["cap_rel"] = rs

	kv := kvstore.New("cap_kv")
	if err := kv.CreateBucket("orders", schema, 0); err != nil {
		return nil, err
	}
	if _, err := kv.Insert(ctx, "orders", rows); err != nil {
		return nil, err
	}

	ds := docstore.New("cap_doc")
	if err := ds.CreateCollection("orders", []docstore.FieldMap{
		{Column: schema.Columns[0], Path: "oid"},
		{Column: schema.Columns[1], Path: "cust.id"},
		{Column: schema.Columns[2], Path: "amount"},
		{Column: schema.Columns[3], Path: "region"},
	}); err != nil {
		return nil, err
	}
	for _, r := range rows {
		doc := map[string]any{
			"oid":    float64(r[0].Int()),
			"cust":   map[string]any{"id": float64(r[1].Int())},
			"amount": r[2].Float(),
			"region": r[3].Str(),
		}
		if err := ds.InsertDoc("orders", doc); err != nil {
			return nil, err
		}
	}

	fs := filestore.New("cap_file")
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%v,%s\n", r[0].Int(), r[1].Int(), r[2].Float(), r[3].Str())
	}
	if err := fs.RegisterData("orders", b.String(), schema); err != nil {
		return nil, err
	}

	for _, src := range []source.Source{rs, kv, ds, fs} {
		if err := cat.AddSource(src); err != nil {
			return nil, err
		}
	}
	for name, src := range map[string]string{
		"orders_rel": "cap_rel", "orders_kv": "cap_kv",
		"orders_doc": "cap_doc", "orders_file": "cap_file",
	} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := cat.DefineTable(name, schema); err != nil {
			return nil, err
		}
		if err := cat.MapSimple(ctx, name, src, "orders"); err != nil {
			return nil, err
		}
	}
	if err := f.Engine.Analyze(ctx); err != nil {
		return nil, err
	}
	return f, nil
}

// TxnStores builds n transactional relstores each holding an "acct"
// table mapped into a partitioned global table (participant i owns ids
// [i*rows, (i+1)*rows)). Used by the atomic-commitment experiment (T6).
func TxnStores(ctx context.Context, n, rowsPer int, remote bool, link Link) (*Fixture, error) {
	f := &Fixture{Engine: core.New(), Stores: map[string]*relstore.Store{}}
	cat := f.Engine.Catalog()
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "balance", Type: types.KindFloat},
	)
	if err := cat.DefineTable("accounts", schema); err != nil {
		return nil, err
	}
	for p := 0; p < n; p++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("bank%02d", p)
		st := relstore.New(name)
		if err := st.CreateTable("acct", schema, 0); err != nil {
			return nil, err
		}
		rows := make([]types.Row, rowsPer)
		for i := range rows {
			rows[i] = types.Row{
				types.NewInt(int64(p*rowsPer + i)),
				types.NewFloat(1000),
			}
		}
		if _, err := st.Insert(ctx, "acct", rows); err != nil {
			return nil, err
		}
		f.Stores[name] = st
		if _, err := f.attach(ctx, st, remote, link); err != nil {
			return nil, err
		}
		lo, hi := int64(p*rowsPer), int64((p+1)*rowsPer)
		if err := cat.MapFragment(ctx, "accounts", &catalog.Fragment{
			Source: name, RemoteTable: "acct",
			Columns: []catalog.ColumnMapping{{RemoteCol: 0}, {RemoteCol: 1}},
			Where: expr.NewBinary(expr.OpAnd,
				expr.NewBinary(expr.OpGe, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(lo))),
				expr.NewBinary(expr.OpLt, expr.NewColRef("", "id"), expr.NewConst(types.NewInt(hi)))),
		}); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Timed runs fn and returns its wall-clock duration.
func Timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// OverloadResult tallies one tenant's outcomes from RunOverload.
type OverloadResult struct {
	Tenant   string
	Admitted int64 // queries that completed
	Shed     int64 // queries rejected with a typed admission.ErrOverload
	Failed   int64 // any other error (a hard failure, not load shedding)
	// Latencies holds one wall-clock sample per admitted query.
	Latencies []time.Duration
}

// RunOverload drives eng with `tenants` concurrent clients, each running
// query `perTenant` times under its own tenant identity, and classifies
// every outcome. It is the offered-load half of the overload harness:
// arm the engine (or the wire server behind it) with an admission
// controller sized below tenants to push it past capacity.
func RunOverload(ctx context.Context, eng *core.Engine, tenants, perTenant int, query string) []OverloadResult {
	out := make([]OverloadResult, tenants)
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			res := &out[t]
			res.Tenant = fmt.Sprintf("tenant%02d", t)
			tctx := admission.WithTenant(ctx, res.Tenant)
			for i := 0; i < perTenant; i++ {
				start := time.Now()
				_, err := eng.Query(tctx, query)
				switch {
				case err == nil:
					res.Admitted++
					res.Latencies = append(res.Latencies, time.Since(start))
				case errors.Is(err, admission.ErrOverload):
					res.Shed++
					// Honest-client backoff: a shed is an instruction to
					// slow down. Without it a shedding tenant spins through
					// its whole attempt budget in microseconds and can
					// starve before a single slot churns.
					backoff := time.Millisecond
					var oe *admission.OverloadError
					if errors.As(err, &oe) && oe.RetryAfter > backoff {
						backoff = oe.RetryAfter
					}
					if backoff > 5*time.Millisecond {
						backoff = 5 * time.Millisecond
					}
					time.Sleep(backoff)
				default:
					res.Failed++
				}
			}
		}(t)
	}
	wg.Wait()
	return out
}

// Percentile returns the p-th percentile (0–100, nearest-rank) of ds
// without mutating it; zero when ds is empty.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
