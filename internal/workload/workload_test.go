package workload

import (
	"context"
	"testing"
	"time"
)

var ctx = context.Background()

func TestTwoTableLocal(t *testing.T) {
	f, err := TwoTable(context.Background(), 100, 1000, false, Link{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := f.Engine.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil || res.Rows[0][0].Int() != 1000 {
		t.Fatalf("orders count = %v, %v", res, err)
	}
	res, err = f.Engine.Query(ctx,
		"SELECT COUNT(*) FROM customers c JOIN orders o ON c.id = o.cust_id")
	if err != nil || res.Rows[0][0].Int() != 1000 {
		t.Fatalf("join count = %v, %v", res, err)
	}
}

func TestTwoTableRemote(t *testing.T) {
	f, err := TwoTable(context.Background(), 50, 200, true, Link{Latency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := f.Engine.Query(ctx, "SELECT COUNT(*) FROM orders WHERE amount < 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() <= 0 {
		t.Errorf("filtered count = %v", res.Rows[0][0])
	}
}

func TestPartitionedFixture(t *testing.T) {
	f, err := Partitioned(context.Background(), 4, 250, false, Link{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := f.Engine.Query(ctx, "SELECT COUNT(*) FROM events")
	if err != nil || res.Rows[0][0].Int() != 1000 {
		t.Fatalf("events = %v, %v", res, err)
	}
	// Partition pruning: one fragment only.
	res, err = f.Engine.Query(ctx, "SELECT COUNT(*) FROM events WHERE oid < 250")
	if err != nil || res.Rows[0][0].Int() != 250 {
		t.Fatalf("pruned = %v, %v", res, err)
	}
}

func TestHeterogeneousViewsAgree(t *testing.T) {
	f, err := Heterogeneous(context.Background(), 500, false, Link{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nat, err := f.Engine.Query(ctx, "SELECT COUNT(*) FROM orders_native WHERE rg = 'N'")
	if err != nil {
		t.Fatal(err)
	}
	med, err := f.Engine.Query(ctx, "SELECT COUNT(*) FROM orders_mediated WHERE region = 'north'")
	if err != nil {
		t.Fatal(err)
	}
	if nat.Rows[0][0].Int() != med.Rows[0][0].Int() {
		t.Errorf("native %v != mediated %v", nat.Rows[0][0], med.Rows[0][0])
	}
	// Unit conversion: mediated amounts are 1/100 of native cents.
	sums, err := f.Engine.Query(ctx, "SELECT SUM(cents) FROM orders_native")
	if err != nil {
		t.Fatal(err)
	}
	sumM, err := f.Engine.Query(ctx, "SELECT SUM(amount) FROM orders_mediated")
	if err != nil {
		t.Fatal(err)
	}
	ratio := sums.Rows[0][0].Float() / sumM.Rows[0][0].Float()
	if ratio < 99.99 || ratio > 100.01 {
		t.Errorf("unit conversion ratio = %v, want 100", ratio)
	}
	// Constant column materializes.
	site, err := f.Engine.Query(ctx, "SELECT DISTINCT site FROM orders_mediated")
	if err != nil || len(site.Rows) != 1 || site.Rows[0][0].Str() != "legacy-dc" {
		t.Errorf("site = %v, %v", site, err)
	}
}

func TestCapabilityWrappersAgree(t *testing.T) {
	f, err := Capability(context.Background(), 300)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	q := "SELECT COUNT(*), SUM(amount) FROM %s WHERE region = 'north' AND amount > 100"
	var want string
	for _, tbl := range []string{"orders_rel", "orders_kv", "orders_doc", "orders_file"} {
		res, err := f.Engine.Query(ctx, replaceTable(q, tbl))
		if err != nil {
			t.Fatalf("%s: %v", tbl, err)
		}
		got := res.Rows[0].String()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s disagrees: %s vs %s", tbl, got, want)
		}
	}
}

func replaceTable(q, tbl string) string {
	out := ""
	for i := 0; i < len(q); i++ {
		if q[i] == '%' && i+1 < len(q) && q[i+1] == 's' {
			out += tbl
			i++
			continue
		}
		out += string(q[i])
	}
	return out
}

func TestTxnStoresFixture(t *testing.T) {
	f, err := TxnStores(context.Background(), 4, 10, false, Link{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A global update across all 4 participants commits atomically.
	n, err := f.Engine.Exec(ctx, "UPDATE accounts SET balance = balance - 1")
	if err != nil || n != 40 {
		t.Fatalf("update = %d, %v", n, err)
	}
	if len(f.Engine.Coordinator().Log().Decisions()) != 1 {
		t.Error("expected one 2PC decision")
	}
	res, err := f.Engine.Query(ctx, "SELECT SUM(balance) FROM accounts")
	if err != nil || res.Rows[0][0].Float() != 4*10*999 {
		t.Fatalf("sum = %v, %v", res, err)
	}
}

func TestGenDeterminism(t *testing.T) {
	a := GenOrders(100, 10, 42)
	b := GenOrders(100, 10, 42)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("GenOrders is not deterministic")
		}
	}
	c := GenOrders(100, 10, 43)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}
