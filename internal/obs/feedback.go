package obs

import (
	"sort"
	"sync"
	"time"
)

// Feedback aggregates estimate-vs-actual cardinalities per (scope,
// normalized-predicate fingerprint). Scope identifies what was
// estimated — "frag:source.table" for a shipped fragment scan,
// "join:inner/hash" for a join operator, and so on — and the
// fingerprint is the predicate with literals normalized away, so
// repeated queries that differ only in constants aggregate into one
// entry. This is the input signal adaptive query execution (ROADMAP
// item 4) will consume: entries with a large q-error mark the plans the
// optimizer is getting wrong.
type Feedback struct {
	mu       sync.Mutex
	entries  map[feedbackKey]*FeedbackEntry
	capacity int
	dropped  int64
}

type feedbackKey struct {
	Scope       string
	Fingerprint string
}

// FeedbackEntry is the aggregated misestimate record for one
// (scope, fingerprint) pair.
type FeedbackEntry struct {
	Scope       string    `json:"scope"`
	Fingerprint string    `json:"fingerprint"`
	Count       int64     `json:"count"`
	SumEst      float64   `json:"sum_est_rows"`
	SumActual   float64   `json:"sum_actual_rows"`
	LastEst     float64   `json:"last_est_rows"`
	LastActual  int64     `json:"last_actual_rows"`
	LastQErr    float64   `json:"last_q_error"`
	MaxQErr     float64   `json:"max_q_error"`
	LastAt      time.Time `json:"last_at"`
}

// NewFeedback returns a store retaining at most capacity distinct
// (scope, fingerprint) entries; further keys are counted as dropped
// rather than evicting aggregates already under observation.
func NewFeedback(capacity int) *Feedback {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Feedback{entries: map[feedbackKey]*FeedbackEntry{}, capacity: capacity}
}

var defaultFeedback = NewFeedback(0)

// DefaultFeedback returns the process-wide feedback store.
func DefaultFeedback() *Feedback { return defaultFeedback }

// qError is the standard cardinality-estimation error measure:
// max(est, act) / min(est, act), with both sides floored at one row so
// an estimate of 0 against an actual of 0 scores a perfect 1.
func qError(est float64, actual int64) float64 {
	e, a := est, float64(actual)
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	if e > a {
		return e / a
	}
	return a / e
}

// Record folds one observed (estimate, actual) pair into the store.
// Safe on a nil receiver.
func (f *Feedback) Record(scope, fingerprint string, est float64, actual int64) {
	if f == nil {
		return
	}
	k := feedbackKey{Scope: scope, Fingerprint: fingerprint}
	q := qError(est, actual)
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	e := f.entries[k]
	if e == nil {
		if len(f.entries) >= f.capacity {
			f.dropped++
			return
		}
		e = &FeedbackEntry{Scope: scope, Fingerprint: fingerprint}
		f.entries[k] = e
	}
	e.Count++
	e.SumEst += est
	e.SumActual += float64(actual)
	e.LastEst = est
	e.LastActual = actual
	e.LastQErr = q
	if q > e.MaxQErr {
		e.MaxQErr = q
	}
	e.LastAt = now
}

// Snapshot returns the entries ordered worst-first (max q-error
// descending, then scope/fingerprint for determinism).
func (f *Feedback) Snapshot() []FeedbackEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]FeedbackEntry, 0, len(f.entries))
	for _, e := range f.entries {
		out = append(out, *e)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxQErr != out[j].MaxQErr {
			return out[i].MaxQErr > out[j].MaxQErr
		}
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Dropped reports how many observations were discarded because the
// store was at capacity with no existing entry for their key.
func (f *Feedback) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Len reports the number of distinct entries.
func (f *Feedback) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

// Reset discards all entries (used by tests and benchmarks).
func (f *Feedback) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.entries = map[feedbackKey]*FeedbackEntry{}
	f.dropped = 0
	f.mu.Unlock()
}
