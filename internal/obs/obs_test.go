package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := NewTrace("SELECT 1")
	ctx := WithTrace(context.Background(), tr)

	qctx, root := StartSpan(ctx, SpanQuery, "SELECT 1")
	if root == nil {
		t.Fatal("expected a span when a trace is attached")
	}
	_, parse := StartSpan(qctx, SpanParse, "")
	parse.End()
	ectx, ex := StartSpan(qctx, SpanExec, "Join")
	_, ship := StartSpan(ectx, SpanShip, "ny.customers")
	ship.SetAttr("sql", "SELECT id FROM customers")
	ship.SetInt("rows", 42)
	ship.End()
	ex.End()
	root.End()

	if got := tr.Root(); got != root {
		t.Fatalf("root = %v, want the first span", got)
	}
	kids := root.Children()
	if len(kids) != 2 {
		t.Fatalf("root children = %d, want 2", len(kids))
	}
	if kids[0].Kind() != SpanParse || kids[1].Kind() != SpanExec {
		t.Fatalf("child kinds = %v, %v", kids[0].Kind(), kids[1].Kind())
	}
	ships := tr.FindAll(SpanShip)
	if len(ships) != 1 {
		t.Fatalf("ship spans = %d, want 1", len(ships))
	}
	if v, ok := ships[0].Attr("rows"); !ok || v != "42" {
		t.Fatalf("ship rows attr = %q, %v", v, ok)
	}

	tree := tr.Tree()
	for _, want := range []string{"query SELECT 1", "parse", "exec Join", "ship ny.customers", "rows=42"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestSpanNilSafety(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), SpanExec, "x")
	if sp != nil {
		t.Fatal("expected nil span without a trace")
	}
	if Enabled(ctx) {
		t.Fatal("Enabled should be false without a trace")
	}
	// All of these must be no-ops, not panics.
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	if sp.Duration() != 0 || sp.Name() != "" || len(sp.Children()) != 0 {
		t.Fatal("nil span accessors should return zero values")
	}
	if _, ok := sp.Attr("k"); ok {
		t.Fatal("nil span has no attrs")
	}
	var tr *Trace
	if tr.Root() != nil || tr.Name() != "" {
		t.Fatal("nil trace accessors should return zero values")
	}
	if b, err := tr.JSON(); err != nil || string(b) != "null" {
		t.Fatalf("nil trace JSON = %s, %v", b, err)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTrace("parallel")
	ctx := WithTrace(context.Background(), tr)
	rctx, root := StartSpan(ctx, SpanQuery, "q")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(rctx, SpanExec, "branch")
			sp.SetInt("rows", 1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if n := len(root.Children()); n != 16 {
		t.Fatalf("children = %d, want 16", n)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTrace("q")
	ctx := WithTrace(context.Background(), tr)
	_, root := StartSpan(ctx, SpanQuery, "q")
	root.SetInt("rows", 3)
	root.End()
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name string    `json:"name"`
		Root *SpanData `json:"root"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded.Name != "q" || decoded.Root == nil || decoded.Root.Kind != "query" {
		t.Fatalf("decoded = %+v", decoded)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5) // samples 0.5..7.5
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 1 || p50 > 4 {
		t.Fatalf("p50 = %v, want within [1,4]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 4 || p99 > 8 {
		t.Fatalf("p99 = %v, want within (4,8]", p99)
	}
	// Overflow bucket reports the last finite bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 1 {
		t.Fatalf("overflow quantile = %v, want 1", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	if r.Counter("a").Value() != 3 {
		t.Fatal("counter handle should be shared by name")
	}
	r.Gauge("g").Set(1.5)
	r.Gauge("g").Add(-0.5)
	r.Histogram("h", LatencyBuckets).Observe(0.002)
	snap := r.Snapshot()
	if snap.Counters["a"] != 3 {
		t.Fatalf("snapshot counter = %d", snap.Counters["a"])
	}
	if snap.Gauges["g"] != 1.0 {
		t.Fatalf("snapshot gauge = %v", snap.Gauges["g"])
	}
	if hd := snap.Histograms["h"]; hd.Count != 1 || hd.P50 <= 0 {
		t.Fatalf("snapshot histogram = %+v", hd)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot must be JSON-marshalable: %v", err)
	}
}

func TestQueryLogSlowRing(t *testing.T) {
	ql := NewQueryLog(0, 2) // threshold 0: everything is slow
	for i := 0; i < 3; i++ {
		id := ql.Begin("q")
		if len(ql.Active()) != 1 {
			t.Fatalf("active = %d, want 1", len(ql.Active()))
		}
		ql.Finish(id, nil, nil)
	}
	slow := ql.Slow()
	if len(slow) != 2 {
		t.Fatalf("slow = %d, want ring capacity 2", len(slow))
	}
	if slow[0].ID != 3 || slow[1].ID != 2 {
		t.Fatalf("slow order = %d, %d; want newest first", slow[0].ID, slow[1].ID)
	}
	// Fast queries are not retained.
	ql2 := NewQueryLog(time.Hour, 2)
	ql2.Finish(ql2.Begin("fast"), nil, nil)
	if len(ql2.Slow()) != 0 {
		t.Fatal("fast query should not be retained")
	}
	// Nil receiver is a no-op.
	var nilLog *QueryLog
	nilLog.Finish(nilLog.Begin("x"), nil, nil)
	if nilLog.Active() != nil || nilLog.Slow() != nil {
		t.Fatal("nil query log should return nil slices")
	}
}

func TestDebugHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wire.client.ny.frames_out").Add(7)
	ql := NewQueryLog(0, 4)
	ql.Finish(ql.Begin("SELECT slow"), nil, NewTrace("SELECT slow"))
	srv := httptest.NewServer(Handler(reg, ql, NewFeedback(8)))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "wire.client.ny.frames_out") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/slow"); code != 200 || !strings.Contains(body, "SELECT slow") {
		t.Fatalf("/slow = %d %q", code, body)
	}
	if code, _ := get("/sessions"); code != 200 {
		t.Fatalf("/sessions = %d", code)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("/nope = %d, want 404", code)
	}
}
