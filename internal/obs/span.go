// Package obs is the mediator's observability layer: query traces with
// typed spans carried through context.Context, a process-wide metrics
// registry (counters, gauges, fixed-bucket histograms), and the runtime
// introspection HTTP handler served by gisd -debug-addr. Everything is
// stdlib-only and designed so the disabled path costs almost nothing: a
// nil *Span or absent Trace turns every method into a no-op, letting
// call sites instrument unconditionally.
package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind classifies a span within the mediator pipeline. The taxonomy
// mirrors the query lifecycle: a root query span, the planning phases,
// per-source sub-query shipment, per-operator execution, and the 2PC
// rounds for global writes.
type SpanKind uint8

// Span kinds, in rough pipeline order.
const (
	SpanQuery SpanKind = iota
	SpanParse
	SpanResolve
	SpanOptimize
	SpanDecompose
	SpanExec
	SpanShip
	SpanFetch
	SpanWrite
	SpanPrepare
	SpanCommit
	SpanAbort
	// SpanRetry marks a resilience-layer retry attempt; SpanBreaker marks
	// a circuit-breaker state transition. Both are zero-width event
	// markers attached under whatever span was active at the time.
	SpanRetry
	SpanBreaker
	// SpanRemote roots a component-system subtree stitched into the
	// mediator's trace from a wire trailer frame; SpanStream times the
	// remote side's row-streaming phase. See DESIGN.md "Distributed
	// tracing & plan telemetry".
	SpanRemote
	SpanStream
)

func (k SpanKind) String() string {
	switch k {
	case SpanQuery:
		return "query"
	case SpanParse:
		return "parse"
	case SpanResolve:
		return "resolve"
	case SpanOptimize:
		return "optimize"
	case SpanDecompose:
		return "decompose"
	case SpanExec:
		return "exec"
	case SpanShip:
		return "ship"
	case SpanFetch:
		return "fetch"
	case SpanWrite:
		return "write"
	case SpanPrepare:
		return "prepare"
	case SpanCommit:
		return "commit"
	case SpanAbort:
		return "abort"
	case SpanRetry:
		return "retry"
	case SpanBreaker:
		return "breaker"
	case SpanRemote:
		return "remote"
	case SpanStream:
		return "stream"
	default:
		return fmt.Sprintf("SpanKind(%d)", uint8(k))
	}
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a trace. All methods are safe on a nil
// receiver (they no-op), and safe for concurrent use: parallel union
// branches and 2PC fan-out attach children from multiple goroutines.
type Span struct {
	mu       sync.Mutex
	id       uint64
	kind     SpanKind
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// nextSpanID hands out process-unique span ids; id 0 means "no span"
// and is what a nil receiver reports.
var nextSpanID atomic.Uint64

// ID returns the span's process-unique id (0 for a nil span). The id
// travels in wire trace context so a component system can tag its
// remote subtree with the mediator span it belongs under.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End records the span's duration. Subsequent calls are no-ops, so
// wrappers may End defensively on both EOF and Close.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr annotates the span, replacing any existing value for key.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	s.SetAttr(key, fmt.Sprintf("%d", v))
}

// Kind returns the span's kind.
func (s *Span) Kind() SpanKind {
	if s == nil {
		return SpanQuery
	}
	return s.kind
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration, or the elapsed time so far
// for a span that has not ended.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Attr returns the value of the named attribute, if set.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Children returns a copy of the span's children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// SpanData is the JSON-marshalable snapshot of a span subtree.
type SpanData struct {
	Kind       string      `json:"kind"`
	Name       string      `json:"name"`
	Start      time.Time   `json:"start"`
	DurationUS int64       `json:"duration_us"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Children   []*SpanData `json:"children,omitempty"`
}

// Data snapshots the span subtree for JSON serialisation.
func (s *Span) Data() *SpanData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	d := &SpanData{
		Kind:       s.kind.String(),
		Name:       s.name,
		Start:      s.start,
		DurationUS: s.dur.Microseconds(),
		Attrs:      append([]Attr(nil), s.attrs...),
	}
	if !s.ended {
		d.DurationUS = time.Since(s.start).Microseconds()
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Data())
	}
	return d
}

// Trace is one query's span tree. Create it with NewTrace, attach it to
// a context with WithTrace, and spans started via StartSpan under that
// context form the tree. The first span started becomes the root; later
// parentless spans attach under the root.
type Trace struct {
	mu   sync.Mutex
	id   string
	name string
	root *Span
}

// NewTrace returns an empty trace with a fresh id. name is
// informational (typically the SQL text).
func NewTrace(name string) *Trace {
	return &Trace{id: newTraceID(), name: name}
}

// NewTraceWithID returns an empty trace reusing an existing id — used
// by component-system servers to echo the mediator's trace id in the
// remote subtree they return.
func NewTraceWithID(id, name string) *Trace {
	return &Trace{id: id, name: name}
}

// ID returns the trace id: 16 hex digits, unique per process and (with
// overwhelming probability) across the federation.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

var (
	traceIDSeed atomic.Uint64
	traceIDOnce sync.Once
)

// newTraceID mixes a crypto-seeded base with a per-process counter via
// splitmix64 — cheap per trace, no global lock beyond one atomic add.
func newTraceID() string {
	traceIDOnce.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			traceIDSeed.Store(binary.LittleEndian.Uint64(b[:]))
		} else {
			traceIDSeed.Store(uint64(time.Now().UnixNano()))
		}
	})
	z := traceIDSeed.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return fmt.Sprintf("%016x", z)
}

// Name returns the trace's name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Root returns the root span, or nil if no span has started.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// attach links sp into the tree under parent (or as/under the root).
func (t *Trace) attach(parent, sp *Span) {
	if parent != nil {
		parent.addChild(sp)
		return
	}
	t.mu.Lock()
	root := t.root
	if root == nil {
		t.root = sp
	}
	t.mu.Unlock()
	if root != nil {
		root.addChild(sp)
	}
}

// Tree renders the trace as an indented text tree, one span per line:
//
//	query SELECT ... 1.2ms
//	  parse 40µs
//	  exec Join(hash) 1.1ms {rows=12}
func (t *Trace) Tree() string {
	root := t.Root()
	if root == nil {
		return "(empty trace)\n"
	}
	var b strings.Builder
	writeSpan(&b, root, 0)
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, depth int) {
	d := s.Data()
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s", d.Kind)
	if d.Name != "" {
		fmt.Fprintf(b, " %s", d.Name)
	}
	fmt.Fprintf(b, " %s", time.Duration(d.DurationUS)*time.Microsecond)
	if len(d.Attrs) > 0 {
		b.WriteString(" {")
		for i, a := range d.Attrs {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%s=%s", a.Key, a.Value)
		}
		b.WriteString("}")
	}
	b.WriteString("\n")
	for _, c := range s.Children() {
		writeSpan(b, c, depth+1)
	}
}

// JSON serialises the trace.
func (t *Trace) JSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.Marshal(struct {
		ID   string    `json:"id"`
		Name string    `json:"name"`
		Root *SpanData `json:"root"`
	}{t.id, t.name, t.Root().Data()})
}

// FindAll returns every span of the given kind in depth-first order.
func (t *Trace) FindAll(kind SpanKind) []*Span {
	var out []*Span
	var walk func(s *Span)
	walk = func(s *Span) {
		if s == nil {
			return
		}
		if s.Kind() == kind {
			out = append(out, s)
		}
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(t.Root())
	return out
}

type traceKey struct{}
type spanKey struct{}

// WithTrace attaches tr to the context, enabling span collection.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// Enabled reports whether ctx carries a trace. Hot paths use this to
// skip building span names when tracing is off.
func Enabled(ctx context.Context) bool { return TraceFrom(ctx) != nil }

// StartSpan begins a span under ctx's current span (or as the trace
// root) and returns a context carrying the new span as parent. When ctx
// has no trace the original context and a nil span are returned — all
// *Span methods no-op on nil, so callers need no branch.
func StartSpan(ctx context.Context, kind SpanKind, name string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := &Span{id: nextSpanID.Add(1), kind: kind, name: name, start: time.Now()}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	tr.attach(parent, sp)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// CurrentSpan returns the span ctx's next StartSpan would nest under,
// or nil when ctx carries no trace or no span has been started. The
// wire client uses it to stitch a remote subtree under the live ship
// span.
func CurrentSpan(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
