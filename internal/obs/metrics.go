package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets is the default histogram layout for durations in
// seconds: 50µs up to 5s, roughly 3 buckets per decade.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Histogram is a fixed-bucket histogram. bounds are inclusive upper
// bounds in ascending order; one extra overflow bucket catches values
// above the last bound. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the winning bucket. The overflow bucket reports
// the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if seen+n >= rank && n > 0 {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - seen) / n
			return lo + frac*(h.bounds[i]-lo)
		}
		seen += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramData is the snapshot form of a histogram.
type HistogramData struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Registry holds named metrics. The zero value is unusable; use
// NewRegistry or the package-wide Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the engine, wire, and
// txn layers report into.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Callers
// on hot paths should cache the returned handle.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later bounds are ignored; the first
// registration wins). Pass LatencyBuckets for durations in seconds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, JSON-marshalable
// for the debug endpoint. Map keys serialise in sorted order.
type Snapshot struct {
	At         time.Time                `json:"at"`
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramData `json:"histograms"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		At:         time.Now(),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramData, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramData{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
	}
	return s
}
