package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// StructuredLog emits one JSON object per completed query to a writer
// (the -query-log flag on gisd/gisql). Records carry the normalized
// query fingerprint, the trace id, a per-phase latency breakdown,
// per-source rows/bytes/WAN split, and the resilience outcomes
// (retries, breaker events, partial results) — everything needed to
// correlate a slow federation query across the mediator and its
// component systems without re-running it.
//
// Sampling: a query is logged when the per-query sampling draw hits
// (rate 1 logs everything) OR the query exceeded the slow threshold —
// slow queries are always logged regardless of the rate. The sampling
// decision is drawn once at Begin time so the engine can force tracing
// for exactly the queries that will be logged.
type StructuredLog struct {
	mu          sync.Mutex
	w           io.Writer
	sample      float64
	fingerprint func(string) string
	rngState    uint64
}

// NewStructuredLog returns a structured log writing to w, sampling
// queries with probability sample (clamped to [0,1]; 1 logs every
// query). fingerprint normalizes-and-hashes SQL text for the
// fingerprint field; nil leaves the field empty.
func NewStructuredLog(w io.Writer, sample float64, fingerprint func(string) string) *StructuredLog {
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	// Reuse the trace-id generator for the sampling stream seed: cheap,
	// crypto-seeded, and unique per log instance.
	seed, _ := strconv.ParseUint(newTraceID(), 16, 64)
	return &StructuredLog{w: w, sample: sample, fingerprint: fingerprint, rngState: seed}
}

// SampleHit draws one sampling decision.
func (l *StructuredLog) SampleHit() bool {
	if l == nil {
		return false
	}
	if l.sample >= 1 {
		return true
	}
	if l.sample <= 0 {
		return false
	}
	l.mu.Lock()
	l.rngState += 0x9e3779b97f4a7c15
	z := l.rngState
	l.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < l.sample
}

// SourceIO is the per-source traffic summary in a query-log record,
// extracted from the ship spans of the query's trace.
type SourceIO struct {
	Source   string `json:"source"`
	Rows     int64  `json:"rows"`
	Bytes    int64  `json:"bytes"`
	ShipUS   int64  `json:"ship_us"`
	RemoteUS int64  `json:"remote_us,omitempty"`
	WanUS    int64  `json:"wan_us,omitempty"`
}

// QueryLogRecord is one JSON line in the structured query log.
// scripts/querylogjson validates this schema; keep the two in sync.
type QueryLogRecord struct {
	Time        string           `json:"time"`
	Fingerprint string           `json:"fingerprint,omitempty"`
	SQL         string           `json:"sql"`
	TraceID     string           `json:"trace_id,omitempty"`
	DurationUS  int64            `json:"duration_us"`
	Error       string           `json:"error,omitempty"`
	Slow        bool             `json:"slow,omitempty"`
	RowsOut     int64            `json:"rows_out,omitempty"`
	PhasesUS    map[string]int64 `json:"phases_us,omitempty"`
	Sources     []SourceIO       `json:"sources,omitempty"`
	Retries     int64            `json:"retries,omitempty"`
	Breakers    int64            `json:"breaker_events,omitempty"`
	Partial     string           `json:"partial,omitempty"`
}

// Emit writes one record as a JSON line. Marshal errors are swallowed:
// the query log must never fail a query.
func (l *StructuredLog) Emit(rec QueryLogRecord) {
	if l == nil || l.w == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(b)
	l.mu.Unlock()
}

// buildRecord assembles a record from what QueryLog.Finish knows plus
// the (possibly nil) trace.
func (l *StructuredLog) buildRecord(sql string, start time.Time, d time.Duration, err error, tr *Trace, slow bool) QueryLogRecord {
	rec := QueryLogRecord{
		Time:       start.UTC().Format(time.RFC3339Nano),
		SQL:        sql,
		DurationUS: d.Microseconds(),
		Slow:       slow,
	}
	if l.fingerprint != nil {
		rec.Fingerprint = l.fingerprint(sql)
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if tr == nil {
		return rec
	}
	rec.TraceID = tr.ID()
	root := tr.Root()
	if root == nil {
		return rec
	}
	if v, ok := root.Attr("rows_out"); ok {
		rec.RowsOut, _ = strconv.ParseInt(v, 10, 64)
	}
	if v, ok := root.Attr("partial"); ok {
		rec.Partial = v
	}
	rec.PhasesUS = phaseBreakdown(root)
	rec.Sources = sourceBreakdown(tr)
	rec.Retries = int64(len(tr.FindAll(SpanRetry)))
	rec.Breakers = int64(len(tr.FindAll(SpanBreaker)))
	return rec
}

// phaseBreakdown sums the root's direct children by phase name —
// parse/resolve/optimize/decompose plus the top-level exec subtree.
func phaseBreakdown(root *Span) map[string]int64 {
	out := map[string]int64{}
	for _, c := range root.Children() {
		switch c.Kind() {
		case SpanParse, SpanResolve, SpanOptimize, SpanDecompose, SpanExec,
			SpanWrite, SpanPrepare, SpanCommit, SpanAbort:
			out[c.Kind().String()] += c.Duration().Microseconds()
		default:
			// Retry/breaker markers and nested detail spans are not
			// top-level phases.
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sourceBreakdown extracts one SourceIO per ship span: rows/bytes from
// the ship attrs, the remote-compute time from a stitched SpanRemote
// child, and the WAN share computed at stitch time.
func sourceBreakdown(tr *Trace) []SourceIO {
	ships := tr.FindAll(SpanShip)
	if len(ships) == 0 {
		return nil
	}
	out := make([]SourceIO, 0, len(ships))
	for _, sh := range ships {
		io := SourceIO{ShipUS: sh.Duration().Microseconds()}
		io.Source, _ = sh.Attr("source")
		io.Rows = attrInt(sh, "rows")
		io.Bytes = attrInt(sh, "bytes")
		io.RemoteUS = attrInt(sh, "remote_us")
		io.WanUS = attrInt(sh, "wan_us")
		out = append(out, io)
	}
	return out
}

func attrInt(s *Span, key string) int64 {
	v, ok := s.Attr(key)
	if !ok {
		return 0
	}
	n, _ := strconv.ParseInt(v, 10, 64)
	return n
}
