package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// ActiveQuery is one in-flight query as reported by the debug endpoint.
type ActiveQuery struct {
	ID    int64     `json:"id"`
	SQL   string    `json:"sql"`
	Start time.Time `json:"start"`
}

// SlowQuery is one completed query that exceeded the slow threshold,
// retained ring-buffer style together with its trace (when tracing was
// enabled for the query).
type SlowQuery struct {
	ID         int64     `json:"id"`
	SQL        string    `json:"sql"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Err        string    `json:"error,omitempty"`
	Trace      *SpanData `json:"trace,omitempty"`
}

// QueryLog tracks in-flight queries and retains slow ones. All methods
// are safe on a nil receiver so call sites can instrument
// unconditionally.
type QueryLog struct {
	mu        sync.Mutex
	nextID    int64
	active    map[int64]ActiveQuery
	threshold time.Duration
	ring      []SlowQuery
	pos       int
	capacity  int
}

// NewQueryLog returns a query log retaining up to capacity queries
// slower than threshold.
func NewQueryLog(threshold time.Duration, capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &QueryLog{
		active:    map[int64]ActiveQuery{},
		threshold: threshold,
		capacity:  capacity,
	}
}

// SetThreshold changes the slow-query threshold.
func (l *QueryLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.threshold = d
	l.mu.Unlock()
}

// Threshold returns the slow-query threshold.
func (l *QueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold
}

// Begin registers an in-flight query and returns its id.
func (l *QueryLog) Begin(sql string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	id := l.nextID
	l.active[id] = ActiveQuery{ID: id, SQL: sql, Start: time.Now()}
	return id
}

// Finish deregisters the query and, if it ran longer than the
// threshold, retains it with its trace.
func (l *QueryLog) Finish(id int64, err error, tr *Trace) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	q, ok := l.active[id]
	if !ok {
		return
	}
	delete(l.active, id)
	d := time.Since(q.Start)
	if d < l.threshold {
		return
	}
	slow := SlowQuery{
		ID:         q.ID,
		SQL:        q.SQL,
		Start:      q.Start,
		DurationMS: float64(d) / float64(time.Millisecond),
		Trace:      tr.Root().Data(),
	}
	if err != nil {
		slow.Err = err.Error()
	}
	if len(l.ring) < l.capacity {
		l.ring = append(l.ring, slow)
	} else {
		l.ring[l.pos] = slow
	}
	l.pos = (l.pos + 1) % l.capacity
}

// Active returns the in-flight queries, oldest first.
func (l *QueryLog) Active() []ActiveQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]ActiveQuery, 0, len(l.active))
	for _, q := range l.active {
		out = append(out, q)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Slow returns the retained slow queries, most recent first.
func (l *QueryLog) Slow() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]SlowQuery, 0, len(l.ring))
	// Walk the ring backwards from the slot most recently written.
	for i := 0; i < len(l.ring); i++ {
		idx := (l.pos - 1 - i + l.capacity) % l.capacity
		if idx < len(l.ring) {
			out = append(out, l.ring[idx])
		}
	}
	l.mu.Unlock()
	return out
}

// Handler serves the runtime introspection endpoint:
//
//	/               index
//	/metrics        registry snapshot as JSON
//	/sessions       active queries as JSON
//	/slow           slow queries (with traces) as JSON
//	/debug/pprof/   the standard net/http/pprof handlers
//
// Either argument may be nil; the corresponding routes then serve empty
// data.
func Handler(reg *Registry, ql *QueryLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "gis debug endpoint\n\n/metrics\n/sessions\n/slow\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Active []ActiveQuery `json:"active"`
		}{ql.Active()})
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			ThresholdMS float64     `json:"threshold_ms"`
			Slow        []SlowQuery `json:"slow"`
		}{float64(ql.Threshold()) / float64(time.Millisecond), ql.Slow()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
