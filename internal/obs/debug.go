package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// ActiveQuery is one in-flight query as reported by the debug endpoint.
type ActiveQuery struct {
	ID    int64     `json:"id"`
	SQL   string    `json:"sql"`
	Start time.Time `json:"start"`
	// Sampled records the structured-log sampling draw made at Begin
	// time, so the engine can force tracing for queries that will be
	// logged and Finish can honor the same decision.
	Sampled bool `json:"sampled,omitempty"`
}

// SlowQuery is one completed query that exceeded the slow threshold,
// retained ring-buffer style together with its trace (when tracing was
// enabled for the query).
type SlowQuery struct {
	ID         int64     `json:"id"`
	SQL        string    `json:"sql"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Err        string    `json:"error,omitempty"`
	Trace      *SpanData `json:"trace,omitempty"`
}

// QueryLog tracks in-flight queries and retains slow ones. All methods
// are safe on a nil receiver so call sites can instrument
// unconditionally.
type QueryLog struct {
	mu         sync.Mutex
	nextID     int64
	active     map[int64]ActiveQuery
	threshold  time.Duration
	ring       []SlowQuery
	pos        int
	capacity   int
	structured *StructuredLog
}

// maxSlowTraceSpans bounds the span subtree retained per slow-ring
// entry: /slow keeps a capped snapshot, never the full live tree, so a
// pathological query cannot pin an arbitrarily large trace in memory.
const maxSlowTraceSpans = 256

// NewQueryLog returns a query log retaining up to capacity queries
// slower than threshold.
func NewQueryLog(threshold time.Duration, capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &QueryLog{
		active:    map[int64]ActiveQuery{},
		threshold: threshold,
		capacity:  capacity,
	}
}

// SetThreshold changes the slow-query threshold.
func (l *QueryLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.threshold = d
	l.mu.Unlock()
}

// Threshold returns the slow-query threshold.
func (l *QueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold
}

// SetStructured attaches a structured JSON query log; Finish then
// emits a record for every sampled or slow query.
func (l *QueryLog) SetStructured(sl *StructuredLog) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.structured = sl
	l.mu.Unlock()
}

// Structured returns the attached structured log, or nil.
func (l *QueryLog) Structured() *StructuredLog {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.structured
}

// Begin registers an in-flight query and returns its id. When a
// structured log is attached the sampling decision for this query is
// drawn here, once, so callers can consult IsSampled to force tracing.
func (l *QueryLog) Begin(sql string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	sl := l.structured
	l.nextID++
	id := l.nextID
	l.mu.Unlock()
	// The sampling draw takes the structured log's own lock; keep it
	// outside ours to avoid ordering constraints.
	sampled := sl.SampleHit()
	l.mu.Lock()
	l.active[id] = ActiveQuery{ID: id, SQL: sql, Start: time.Now(), Sampled: sampled}
	l.mu.Unlock()
	return id
}

// IsSampled reports the sampling decision drawn for an in-flight query.
func (l *QueryLog) IsSampled(id int64) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active[id].Sampled
}

// Finish deregisters the query, retains it in the slow ring (with a
// size-capped trace snapshot) if it ran longer than the threshold, and
// emits a structured-log record if the query was sampled or slow.
func (l *QueryLog) Finish(id int64, err error, tr *Trace) {
	if l == nil {
		return
	}
	l.mu.Lock()
	q, ok := l.active[id]
	if !ok {
		l.mu.Unlock()
		return
	}
	delete(l.active, id)
	d := time.Since(q.Start)
	slow := d >= l.threshold
	sl := l.structured
	if !slow {
		l.mu.Unlock()
		if sl != nil && q.Sampled {
			sl.Emit(sl.buildRecord(q.SQL, q.Start, d, err, tr, false))
		}
		return
	}
	entry := SlowQuery{
		ID:         q.ID,
		SQL:        q.SQL,
		Start:      q.Start,
		DurationMS: float64(d) / float64(time.Millisecond),
		Trace:      CapSpanData(tr.Root().Data(), maxSlowTraceSpans),
	}
	if err != nil {
		entry.Err = err.Error()
	}
	if len(l.ring) < l.capacity {
		l.ring = append(l.ring, entry)
	} else {
		l.ring[l.pos] = entry
	}
	l.pos = (l.pos + 1) % l.capacity
	l.mu.Unlock()
	if sl != nil {
		sl.Emit(sl.buildRecord(q.SQL, q.Start, d, err, tr, true))
	}
}

// Active returns the in-flight queries, oldest first.
func (l *QueryLog) Active() []ActiveQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]ActiveQuery, 0, len(l.active))
	for _, q := range l.active {
		out = append(out, q)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Slow returns the retained slow queries, most recent first.
func (l *QueryLog) Slow() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]SlowQuery, 0, len(l.ring))
	// Walk the ring backwards from the slot most recently written.
	for i := 0; i < len(l.ring); i++ {
		idx := (l.pos - 1 - i + l.capacity) % l.capacity
		if idx < len(l.ring) {
			out = append(out, l.ring[idx])
		}
	}
	l.mu.Unlock()
	return out
}

// Handler serves the runtime introspection endpoint:
//
//	/               index
//	/metrics        registry snapshot as JSON
//	/sessions       active queries as JSON
//	/slow           slow queries (with capped traces) as JSON
//	/estimates      estimate-vs-actual plan feedback as JSON
//	/debug/pprof/   the standard net/http/pprof handlers
//
// Any argument may be nil; the corresponding routes then serve empty
// data.
func Handler(reg *Registry, ql *QueryLog, fb *Feedback) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "gis debug endpoint\n\n/metrics\n/sessions\n/slow\n/estimates\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var snap Snapshot
		if reg != nil {
			snap = reg.Snapshot()
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Active []ActiveQuery `json:"active"`
		}{ql.Active()})
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			ThresholdMS float64     `json:"threshold_ms"`
			Slow        []SlowQuery `json:"slow"`
		}{float64(ql.Threshold()) / float64(time.Millisecond), ql.Slow()})
	})
	mux.HandleFunc("/estimates", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Entries []FeedbackEntry `json:"entries"`
			Dropped int64           `json:"dropped"`
		}{fb.Snapshot(), fb.Dropped()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
