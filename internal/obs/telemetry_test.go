package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestFeedbackAggregation(t *testing.T) {
	f := NewFeedback(8)
	f.Record("frag:ny.items", "(id > ?)", 100, 10) // q-err 10
	f.Record("frag:ny.items", "(id > ?)", 100, 50) // q-err 2
	f.Record("filter", "(cat = ?)", 5, 5)          // q-err 1

	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	snap := f.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d", len(snap))
	}
	// Worst-first ordering.
	top := snap[0]
	if top.Scope != "frag:ny.items" {
		t.Fatalf("top scope = %q", top.Scope)
	}
	if top.Count != 2 || top.SumEst != 200 || top.SumActual != 60 {
		t.Errorf("aggregates = %+v", top)
	}
	if top.LastEst != 100 || top.LastActual != 50 {
		t.Errorf("last pair = %v/%v", top.LastEst, top.LastActual)
	}
	if top.LastQErr != 2 || top.MaxQErr != 10 {
		t.Errorf("q-errors = last %v max %v, want 2/10", top.LastQErr, top.MaxQErr)
	}
	if snap[1].MaxQErr != 1 {
		t.Errorf("perfect estimate q-err = %v, want 1", snap[1].MaxQErr)
	}

	f.Reset()
	if f.Len() != 0 || f.Dropped() != 0 {
		t.Errorf("Reset left %d entries, %d dropped", f.Len(), f.Dropped())
	}
}

func TestFeedbackQErrorFloor(t *testing.T) {
	// Zero estimate against zero actual is a perfect estimate, not a
	// division by zero.
	if q := qError(0, 0); q != 1 {
		t.Errorf("qError(0,0) = %v", q)
	}
	if q := qError(0, 10); q != 10 {
		t.Errorf("qError(0,10) = %v", q)
	}
	if q := qError(50, 0); q != 50 {
		t.Errorf("qError(50,0) = %v", q)
	}
}

func TestFeedbackCapacity(t *testing.T) {
	f := NewFeedback(2)
	f.Record("a", "p", 1, 1)
	f.Record("b", "p", 1, 1)
	f.Record("c", "p", 1, 1) // over capacity: dropped, not evicting
	f.Record("a", "p", 1, 1) // existing keys still update at capacity
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
	if f.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", f.Dropped())
	}
	var nilF *Feedback
	nilF.Record("x", "y", 1, 1) // nil receiver must not panic
	if nilF.Len() != 0 || nilF.Snapshot() != nil {
		t.Error("nil Feedback must be inert")
	}
}

func TestStructuredLogSampling(t *testing.T) {
	always := NewStructuredLog(&strings.Builder{}, 1, nil)
	never := NewStructuredLog(&strings.Builder{}, 0, nil)
	for i := 0; i < 100; i++ {
		if !always.SampleHit() {
			t.Fatal("rate 1 must always hit")
		}
		if never.SampleHit() {
			t.Fatal("rate 0 must never hit")
		}
	}
	half := NewStructuredLog(&strings.Builder{}, 0.5, nil)
	hits := 0
	for i := 0; i < 2000; i++ {
		if half.SampleHit() {
			hits++
		}
	}
	if hits < 800 || hits > 1200 {
		t.Errorf("rate 0.5 hit %d/2000 draws", hits)
	}
	var nilLog *StructuredLog
	if nilLog.SampleHit() {
		t.Error("nil log must never sample")
	}
	nilLog.Emit(QueryLogRecord{}) // must not panic
}

// TestStructuredLogRecord builds a realistic trace — root with phase
// children, a ship span with stitched remote timing, a retry marker —
// and checks the emitted JSON line carries every breakdown.
func TestStructuredLogRecord(t *testing.T) {
	tr := NewTrace("SELECT 1")
	ctx := WithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, SpanQuery, "SELECT 1")
	_, p := StartSpan(ctx, SpanParse, "")
	p.End()
	xctx, x := StartSpan(ctx, SpanExec, "join")
	sctx, sh := StartSpan(xctx, SpanShip, "ny.items")
	sh.SetAttr("source", "ny")
	sh.SetInt("rows", 42)
	sh.SetInt("bytes", 1000)
	sh.SetInt("remote_us", 7)
	sh.SetInt("wan_us", 3)
	_, rt := StartSpan(sctx, SpanRetry, "attempt 2")
	rt.End()
	sh.End()
	x.End()
	root.SetInt("rows_out", 5)
	root.SetAttr("partial", "1/2 sources")
	root.End()

	var buf strings.Builder
	sl := NewStructuredLog(&buf, 1, func(s string) string { return "fp-" + s })
	sl.Emit(sl.buildRecord("SELECT 1", time.Now(), 123*time.Microsecond, nil, tr, true))

	var rec QueryLogRecord
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("emitted line is not JSON: %v\n%s", err, buf.String())
	}
	if rec.Fingerprint != "fp-SELECT 1" || rec.SQL != "SELECT 1" || !rec.Slow {
		t.Errorf("record = %+v", rec)
	}
	if rec.TraceID != tr.ID() {
		t.Errorf("trace id = %q, want %q", rec.TraceID, tr.ID())
	}
	if rec.RowsOut != 5 || rec.Partial != "1/2 sources" {
		t.Errorf("rows_out/partial = %d/%q", rec.RowsOut, rec.Partial)
	}
	if _, ok := rec.PhasesUS["parse"]; !ok {
		t.Errorf("phases = %v, want parse present", rec.PhasesUS)
	}
	if rec.Retries != 1 {
		t.Errorf("retries = %d, want 1", rec.Retries)
	}
	if len(rec.Sources) != 1 {
		t.Fatalf("sources = %v", rec.Sources)
	}
	src := rec.Sources[0]
	if src.Source != "ny" || src.Rows != 42 || src.Bytes != 1000 || src.RemoteUS != 7 || src.WanUS != 3 {
		t.Errorf("source io = %+v", src)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec.Time); err != nil {
		t.Errorf("time %q not RFC3339Nano: %v", rec.Time, err)
	}
}

// TestSpanKindRoundTrip guards kindNames against drifting from
// SpanKind.String when a kind is added.
func TestSpanKindRoundTrip(t *testing.T) {
	for name, kind := range kindNames {
		if kind.String() != name {
			t.Errorf("kind %d String() = %q, kindNames says %q", kind, kind.String(), name)
		}
		back, ok := KindFromString(kind.String())
		if !ok || back != kind {
			t.Errorf("KindFromString(%q) = %v, %v", kind.String(), back, ok)
		}
	}
	if _, ok := KindFromString("no-such-kind"); ok {
		t.Error("unknown kind name must not parse")
	}
}

func TestSpanFromDataAttach(t *testing.T) {
	data := &SpanData{
		Kind: "remote", Name: "ny", DurationUS: 100,
		Attrs: []Attr{{Key: "trace_id", Value: "abc"}},
		Children: []*SpanData{
			{Kind: "exec", Name: "items", DurationUS: 60},
			{Kind: "bogus-kind", Name: "future", DurationUS: 1},
		},
	}
	tr := NewTrace("q")
	ctx := WithTrace(context.Background(), tr)
	_, ship := StartSpan(ctx, SpanShip, "ny.items")
	ship.AttachData(data)
	ship.End()

	kids := ship.Children()
	if len(kids) != 1 {
		t.Fatalf("ship children = %d", len(kids))
	}
	remote := kids[0]
	if remote.Kind() != SpanRemote || remote.Name() != "ny" {
		t.Errorf("remote = %v %q", remote.Kind(), remote.Name())
	}
	if remote.Duration() != 100*time.Microsecond {
		t.Errorf("duration = %v", remote.Duration())
	}
	if v, _ := remote.Attr("trace_id"); v != "abc" {
		t.Errorf("attrs not copied: %v", v)
	}
	sub := remote.Children()
	if len(sub) != 2 {
		t.Fatalf("remote children = %d", len(sub))
	}
	// Unknown kinds from an out-of-version peer degrade to SpanRemote.
	if sub[1].Kind() != SpanRemote {
		t.Errorf("unknown kind mapped to %v, want remote", sub[1].Kind())
	}
	// Nil safety all the way down.
	var nilSpan *Span
	nilSpan.AttachData(data)
	ship.AttachData(nil)
	if SpanFromData(nil) != nil {
		t.Error("SpanFromData(nil) must be nil")
	}
}

func TestCapSpanData(t *testing.T) {
	// A root with 10 children, each with 2 children: 31 nodes.
	root := &SpanData{Kind: "query", Name: "root"}
	for i := 0; i < 10; i++ {
		c := &SpanData{Kind: "exec", Name: "child"}
		c.Children = []*SpanData{{Kind: "ship"}, {Kind: "fetch"}}
		root.Children = append(root.Children, c)
	}
	if n := CountSpanData(root); n != 31 {
		t.Fatalf("CountSpanData = %d", n)
	}

	capped := CapSpanData(root, 10)
	if n := CountSpanData(capped); n != 10 {
		t.Errorf("capped size = %d, want 10", n)
	}
	found := false
	for _, a := range capped.Attrs {
		if a.Key == "truncated_spans" {
			found = true
			if a.Value != "21" {
				t.Errorf("truncated_spans = %q, want 21", a.Value)
			}
		}
	}
	if !found {
		t.Error("capped tree missing truncated_spans attr")
	}
	// The input tree is untouched.
	if len(root.Attrs) != 0 || CountSpanData(root) != 31 {
		t.Error("CapSpanData modified its input")
	}

	// A tree under budget passes through whole, unannotated.
	whole := CapSpanData(root, 1000)
	if CountSpanData(whole) != 31 || len(whole.Attrs) != 0 {
		t.Errorf("under-budget cap: %d nodes, attrs %v", CountSpanData(whole), whole.Attrs)
	}
	if CapSpanData(nil, 5) != nil {
		t.Error("CapSpanData(nil) must be nil")
	}
}
