package obs

import (
	"strconv"
	"time"
)

// Remote-subtree stitching: a component-system server runs its part of
// a query under its own Trace, snapshots the finished tree as SpanData,
// and ships it back to the mediator in a wire trailer frame. The
// mediator reconstructs the snapshot as ended spans and attaches them
// under the live ship span, producing one federation-wide tree.

// kindNames maps the SpanKind wire/JSON names back to kinds for
// reconstructing serialised subtrees. Kept next to SpanKind.String;
// the spankind round-trip test guards the two against drift.
var kindNames = map[string]SpanKind{
	"query":     SpanQuery,
	"parse":     SpanParse,
	"resolve":   SpanResolve,
	"optimize":  SpanOptimize,
	"decompose": SpanDecompose,
	"exec":      SpanExec,
	"ship":      SpanShip,
	"fetch":     SpanFetch,
	"write":     SpanWrite,
	"prepare":   SpanPrepare,
	"commit":    SpanCommit,
	"abort":     SpanAbort,
	"retry":     SpanRetry,
	"breaker":   SpanBreaker,
	"remote":    SpanRemote,
	"stream":    SpanStream,
}

// KindFromString parses a SpanKind name as produced by SpanKind.String.
// Unknown names report false; callers stitching foreign subtrees fall
// back to SpanRemote so an out-of-version peer still renders.
func KindFromString(s string) (SpanKind, bool) {
	k, ok := kindNames[s]
	return k, ok
}

// SpanFromData reconstructs a snapshot as an already-ended span
// subtree. The spans get fresh local ids and are safe to attach into a
// live trace; mutating the snapshot afterwards does not affect them.
func SpanFromData(d *SpanData) *Span {
	if d == nil {
		return nil
	}
	kind, ok := KindFromString(d.Kind)
	if !ok {
		kind = SpanRemote
	}
	sp := &Span{
		id:    nextSpanID.Add(1),
		kind:  kind,
		name:  d.Name,
		start: d.Start,
		dur:   time.Duration(d.DurationUS) * time.Microsecond,
		ended: true,
		attrs: append([]Attr(nil), d.Attrs...),
	}
	for _, c := range d.Children {
		if child := SpanFromData(c); child != nil {
			sp.children = append(sp.children, child)
		}
	}
	return sp
}

// AttachData stitches a remote snapshot under s as an ended child
// subtree. Safe on a nil receiver and a nil snapshot (no-ops), and safe
// concurrently with other children being attached.
func (s *Span) AttachData(d *SpanData) {
	if s == nil || d == nil {
		return
	}
	if child := SpanFromData(d); child != nil {
		s.addChild(child)
	}
}

// CountSpanData returns the number of nodes in a snapshot subtree.
func CountSpanData(d *SpanData) int {
	if d == nil {
		return 0
	}
	n := 1
	for _, c := range d.Children {
		n += CountSpanData(c)
	}
	return n
}

// CapSpanData bounds a snapshot to at most maxNodes spans, keeping the
// shallow prefix of the tree in depth-first order (parents before their
// children, so the retained shape stays connected). When spans are
// dropped the root gains a truncated_spans attribute with the count, so
// /slow consumers can tell a capped trace from a small one. The input
// is not modified; the returned tree shares no structure with it.
func CapSpanData(d *SpanData, maxNodes int) *SpanData {
	if d == nil {
		return nil
	}
	total := CountSpanData(d)
	if maxNodes <= 0 {
		maxNodes = 1
	}
	budget := maxNodes
	out := capSpan(d, &budget)
	if dropped := total - (maxNodes - budget); dropped > 0 && out != nil {
		out.Attrs = append(out.Attrs, Attr{Key: "truncated_spans", Value: strconv.Itoa(dropped)})
	}
	return out
}

func capSpan(d *SpanData, budget *int) *SpanData {
	if *budget <= 0 {
		return nil
	}
	*budget--
	out := &SpanData{
		Kind:       d.Kind,
		Name:       d.Name,
		Start:      d.Start,
		DurationUS: d.DurationUS,
		Attrs:      append([]Attr(nil), d.Attrs...),
	}
	for _, c := range d.Children {
		if *budget <= 0 {
			break
		}
		if kept := capSpan(c, budget); kept != nil {
			out.Children = append(out.Children, kept)
		}
	}
	return out
}
