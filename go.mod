module gis

go 1.22
