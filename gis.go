// Package gis is a Global Information System: a federated query engine
// that presents a single global schema over heterogeneous, autonomous,
// distributed component information systems — the architecture of
// "Global Information System Issues" (ICDE 1989).
//
// The mediator (an Engine) plans global SQL against a catalog of GAV
// mappings, decomposes each query into per-source sub-queries sized to
// each wrapper's capabilities, compensates at the mediator for whatever
// a source cannot evaluate, translates between representations (name,
// value, and unit conflicts), and coordinates global updates with
// two-phase commit.
//
// # Quick start
//
//	e := gis.New()
//	store := relstore.New("db1")                       // a component system
//	store.CreateTable("users", schema, 0)
//	e.Catalog().AddSource(store)                       // register it
//	e.Catalog().DefineTable("users", schema)           // global schema
//	e.Catalog().MapSimple("users", "db1", "users")     // GAV mapping
//	res, err := e.Query(ctx, "SELECT * FROM users WHERE id < 10")
//
// Component systems ship in internal sub-packages: relstore (full SQL
// pushdown, transactions), kvstore (keyed access over a B-tree),
// docstore (JSON documents), filestore (CSV scan-only), and wire (any of
// the above served over TCP with simulated WAN links).
package gis

import (
	"gis/internal/catalog"
	"gis/internal/core"
	"gis/internal/plan"
	"gis/internal/txn"
)

// Engine is the mediator: the entry point of the library.
type Engine = core.Engine

// Result is a materialized query result.
type Result = core.Result

// Catalog is the global schema registry.
type Catalog = catalog.Catalog

// Fragment maps one remote table onto a global table.
type Fragment = catalog.Fragment

// ColumnMapping defines how one global column derives from a fragment.
type ColumnMapping = catalog.ColumnMapping

// PlanOptions configures the optimizer (ablation switches included).
type PlanOptions = plan.Options

// Coordinator drives two-phase commit for global updates.
type Coordinator = txn.Coordinator

// New creates an engine with every optimization enabled.
func New() *Engine { return core.New() }

// NewWithPlanOptions creates an engine with explicit optimizer settings.
func NewWithPlanOptions(o *PlanOptions) *Engine {
	return core.New(core.WithPlanOptions(o))
}

// DefaultPlanOptions returns the fully-enabled optimizer configuration.
func DefaultPlanOptions() *PlanOptions { return plan.DefaultOptions() }
