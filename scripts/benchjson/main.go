// Command benchjson validates a gisbench -json stream on stdin: one
// experiments.Record object per line, no unknown fields, and internally
// consistent tables (every row as wide as its header). check.sh pipes
// `gisbench -json -quick` through it so schema drift in either the
// producer or EXPERIMENTS.md's documented contract fails the gate.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gis/internal/experiments"
)

func main() {
	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	n := 0
	for {
		var rec experiments.Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: record %d: %v\n", n+1, err)
			os.Exit(1)
		}
		n++
		if err := validate(rec); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: record %d (%s): %v\n", n, rec.ID, err)
			os.Exit(1)
		}
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no records on stdin")
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d records ok\n", n)
}

func validate(rec experiments.Record) error {
	if rec.ID == "" {
		return fmt.Errorf("empty id")
	}
	if rec.Title == "" {
		return fmt.Errorf("empty title")
	}
	if len(rec.Header) == 0 {
		return fmt.Errorf("empty header")
	}
	if len(rec.Rows) == 0 {
		return fmt.Errorf("no rows")
	}
	for i, row := range rec.Rows {
		if len(row) != len(rec.Header) {
			return fmt.Errorf("row %d has %d cells, header has %d", i, len(row), len(rec.Header))
		}
	}
	if rec.ElapsedMS < 0 {
		return fmt.Errorf("negative elapsed_ms %v", rec.ElapsedMS)
	}
	// Allocation census: zero is legal (planning-only experiments never
	// route through median), negative or half-present is drift.
	if rec.AllocsPerOp < 0 {
		return fmt.Errorf("negative allocs_per_op %v", rec.AllocsPerOp)
	}
	if rec.BytesPerOp < 0 {
		return fmt.Errorf("negative bytes_per_op %v", rec.BytesPerOp)
	}
	if rec.AllocsPerOp > 0 && rec.BytesPerOp == 0 {
		return fmt.Errorf("allocs_per_op %v with zero bytes_per_op", rec.AllocsPerOp)
	}
	if rec.At == "" {
		return fmt.Errorf("empty at timestamp")
	}
	return nil
}
