// Command querylogjson validates a structured query log (the -query-log
// flag on gisd/gisql) on stdin: one obs.QueryLogRecord object per line,
// no unknown fields, RFC3339Nano timestamps, non-negative durations, and
// internally consistent per-source entries. check.sh runs a demo
// federation query with -query-log-sample 1 and pipes the log through
// this validator, so schema drift between the producer (obs.jsonlog)
// and the documented contract fails the gate.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"gis/internal/obs"
)

func main() {
	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	n := 0
	for {
		var rec obs.QueryLogRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "querylogjson: record %d: %v\n", n+1, err)
			os.Exit(1)
		}
		n++
		if err := validate(rec); err != nil {
			fmt.Fprintf(os.Stderr, "querylogjson: record %d (%q): %v\n", n, rec.SQL, err)
			os.Exit(1)
		}
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "querylogjson: no records on stdin")
		os.Exit(1)
	}
	fmt.Printf("querylogjson: %d records ok\n", n)
}

func validate(rec obs.QueryLogRecord) error {
	if rec.SQL == "" {
		return fmt.Errorf("empty sql")
	}
	if _, err := time.Parse(time.RFC3339Nano, rec.Time); err != nil {
		return fmt.Errorf("time %q: %w", rec.Time, err)
	}
	if rec.DurationUS < 0 {
		return fmt.Errorf("negative duration_us %d", rec.DurationUS)
	}
	if rec.RowsOut < 0 {
		return fmt.Errorf("negative rows_out %d", rec.RowsOut)
	}
	if rec.Retries < 0 || rec.Breakers < 0 {
		return fmt.Errorf("negative resilience counts (retries %d, breakers %d)", rec.Retries, rec.Breakers)
	}
	for phase, us := range rec.PhasesUS {
		if phase == "" {
			return fmt.Errorf("empty phase name")
		}
		if us < 0 {
			return fmt.Errorf("phase %s: negative duration %d", phase, us)
		}
	}
	for i, src := range rec.Sources {
		if src.Source == "" {
			return fmt.Errorf("source %d: empty name", i)
		}
		if src.Rows < 0 || src.Bytes < 0 || src.ShipUS < 0 || src.RemoteUS < 0 || src.WanUS < 0 {
			return fmt.Errorf("source %d (%s): negative traffic fields %+v", i, src.Source, src)
		}
		if src.RemoteUS > 0 && src.RemoteUS+src.WanUS > src.ShipUS+src.ShipUS {
			// remote+wan should roughly partition ship time; allow slack
			// for clock skew between mediator and component system, but a
			// sum beyond twice the ship duration means the split is wrong.
			return fmt.Errorf("source %d (%s): remote_us %d + wan_us %d inconsistent with ship_us %d",
				i, src.Source, src.RemoteUS, src.WanUS, src.ShipUS)
		}
	}
	return nil
}
