#!/bin/sh
# check.sh — the full verification gate, run from the repo root (or any
# subdirectory: it cd's to the module root first). Mirrors what CI runs:
#
#   1. gofmt      — no unformatted files
#   2. go vet     — stdlib static checks
#   3. gislint    — project invariant analyzers: syntactic (errdrop,
#                   valuecompare, exhaustive), CFG-based flow-sensitive
#                   (iterclose, spanfinish, ctxflow, lockheld),
#                   interprocedural/summary-based (sqlship, goleak),
#                   concurrency-safety (lockguard, atomicmix,
#                   wglifecycle, chanmisuse; see DESIGN.md
#                   "Concurrency model & guard inference"),
#                   and hot-path perf (hotalloc, boxing, hotdefer,
#                   valcopy); ratcheted against lint.baseline.json —
#                   known perf findings are absorbed, anything NEW
#                   fails the gate. After fixing findings, shrink the
#                   snapshot and commit it:
#                     go run ./cmd/gislint -baseline lint.baseline.json \
#                       -update-baseline ./...
#                   see DESIGN.md "Static analysis & invariants" and
#                   "Hot-path model & perf lint"
#   3a. concurrency — the four concurrency-safety analyzers once more
#                   in isolation at their native error severity (no
#                   baseline: a lock-protocol finding is a bug, not
#                   ratcheted debt) — a clean run proves the guard
#                   model still infers zero violations module-wide
#   3a'. deadlock — the three deadlock analyzers (lockorder,
#                   selfdeadlock, blockcycle; see DESIGN.md "Lock
#                   order & deadlock analysis") in isolation, same
#                   no-baseline policy: a lock-order cycle is a hang
#                   waiting for its interleaving, so any finding
#                   fails the gate outright
#   3b. fixtures  — each analyzer must still fire on its fixture
#                   package (an analyzer that stops finding its own
#                   fixture has gone blind); any unexpected-finding
#                   diff here is a hard FAILURE, not a warning, and
#                   the gate covers the sqlship/goleak, concurrency-
#                   safety, and perf-lint fixtures plus the call-graph/
#                   summary/hotness/baseline/changed-mode unit tests
#   4. go build   — everything compiles
#   5. go test    — full suite under the race detector, including the
#                   race-stress and seeded-chaos tests (both skipped
#                   under -short)
#   5b. chaos     — the TestChaos* fault-injection suite once more in
#                   isolation (wire, parallel union, bind join, 2PC,
#                   breaker shedding; see DESIGN.md "Resilience &
#                   fault model")
#   6. gisbench   — quick JSON smoke run, schema-validated by
#                   scripts/benchjson (see EXPERIMENTS.md)
#   7. query log  — demo-federation query with -query-log-sample 1,
#                   lines schema-validated by scripts/querylogjson
#
# Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo '== gofmt =='
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go vet =='
go vet ./...

echo '== gislint (ratchet) =='
# make lint-ratchet exactly, so this gate and the Makefile target can
# never drift apart. The baseline absorbs known perf-lint findings;
# any finding not in lint.baseline.json fails the build.
if ! make --no-print-directory lint-ratchet; then
    echo 'check: FAIL — new lint findings not in lint.baseline.json (fix them, or if intentional rerun gislint with -update-baseline and commit the snapshot)' >&2
    exit 1
fi

echo '== gislint concurrency (error severity, no baseline) =='
# make lint-concurrency exactly, so this gate and the Makefile target
# can never drift apart. The concurrency-safety analyzers are never
# ratcheted: any finding fails the build outright.
if ! make --no-print-directory lint-concurrency; then
    echo 'check: FAIL — concurrency-safety findings (lockguard/atomicmix/wglifecycle/chanmisuse); fix the race or add a reasoned //lint:ignore' >&2
    exit 1
fi

echo '== gislint deadlock (error severity, no baseline) =='
# make lint-deadlock exactly, so this gate and the Makefile target can
# never drift apart. Deadlock findings are never ratcheted: restore the
# canonical lock order (DESIGN.md "Lock order & deadlock analysis") or
# add a reasoned //lint:ignore at the witness site.
if ! make --no-print-directory lint-deadlock; then
    echo 'check: FAIL — deadlock findings (lockorder/selfdeadlock/blockcycle); restore the canonical lock order in DESIGN.md or add a reasoned //lint:ignore' >&2
    exit 1
fi

echo '== gislint fixtures =='
# make lint-fixtures exactly, so this gate and the Makefile target can
# never drift apart; an unexpected-finding diff fails the whole check.
if ! make --no-print-directory lint-fixtures; then
    echo 'check: FAIL — analyzer fixtures diverged (unexpected or missing findings above)' >&2
    exit 1
fi

echo '== go build =='
go build ./...

echo '== go test -race =='
go test -race ./...

echo '== chaos (seeded fault injection) =='
go test -race -run TestChaos -count=1 ./internal/wire ./internal/core

echo '== overload (admission, quotas, backpressure) =='
# make overload exactly, so this gate and the Makefile target can never
# drift apart: the multi-tenant overload chaos suite plus a quick OV1
# bench run validated against the gisbench JSON schema.
if ! make --no-print-directory overload; then
    echo 'check: FAIL — overload robustness gate (admission control / backpressure / quota enforcement)' >&2
    exit 1
fi

echo '== gisbench -json -quick =='
go run ./cmd/gisbench -json -quick | go run ./scripts/benchjson

echo '== query-log schema =='
# Run a demo-federation query with every statement sampled into the
# structured log, then validate the emitted lines against the
# obs.QueryLogRecord schema (see DESIGN.md "Distributed tracing & plan
# telemetry").
qlog=$(mktemp)
trap 'rm -f "$qlog"' EXIT
go run ./cmd/gisql -demo -query-log "$qlog" -query-log-sample 1 \
    -e "SELECT c.name, SUM(o.amount) FROM customers c JOIN orders o ON c.id = o.cust_id WHERE c.region = 'east' GROUP BY c.name" >/dev/null
go run ./scripts/querylogjson < "$qlog"

echo 'check: all gates passed'
