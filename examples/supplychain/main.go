// Supplychain: a federation over real TCP connections. Three component
// systems — a warehouse database, an orders database, and a parts
// catalog — each run behind a wire-protocol server with simulated
// wide-area latency. The mediator federates them, the EXPLAIN output
// shows what was pushed to each site, a semijoin-vs-ship-all comparison
// is timed over the simulated WAN, and a global stock transfer commits
// atomically across two sites with two-phase commit.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gis"
	"gis/internal/expr"
	"gis/internal/plan"
	"gis/internal/relstore"
	"gis/internal/types"
	"gis/internal/wire"
)

func main() {
	ctx := context.Background()

	// --- Build and serve the three component systems. ---
	warehouseEast := buildWarehouse("wh_east", 0, 10000)
	warehouseWest := buildWarehouse("wh_west", 10000, 10000)
	parts := buildParts(40)

	var closers []func() error
	serve := func(st *relstore.Store) string {
		srv, err := wire.Serve(ctx, "127.0.0.1:0", st)
		must(err)
		closers = append(closers, srv.Close)
		return srv.Addr()
	}
	eastAddr, westAddr, partsAddr := serve(warehouseEast), serve(warehouseWest), serve(parts)
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	// --- The mediator dials each site over a simulated 5 ms WAN. ---
	link := wire.SimLink{Latency: 5 * time.Millisecond, BytesPerSec: 5 << 20}
	e := gis.New()
	cat := e.Catalog()
	for _, s := range []struct{ name, addr string }{
		{"wh_east", eastAddr}, {"wh_west", westAddr}, {"partsdb", partsAddr},
	} {
		must(ctx.Err())
		cl, err := wire.DialContext(ctx, s.addr, wire.WithSimLink(link), wire.WithName(s.name))
		must(err)
		closers = append(closers, cl.Close)
		must(cat.AddSource(cl))
	}

	// Global stock table: horizontal partition across the warehouses.
	stockSchema := types.NewSchema(
		types.Column{Name: "item", Type: types.KindInt},
		types.Column{Name: "qty", Type: types.KindInt},
		types.Column{Name: "part", Type: types.KindInt},
	)
	must(cat.DefineTable("stock", stockSchema))
	idCols := []gis.ColumnMapping{{RemoteCol: 0}, {RemoteCol: 1}, {RemoteCol: 2}}
	must(cat.MapFragment(ctx, "stock", &gis.Fragment{
		Source: "wh_east", RemoteTable: "stock", Columns: idCols,
		Where: lt("item", 10000),
	}))
	must(cat.MapFragment(ctx, "stock", &gis.Fragment{
		Source: "wh_west", RemoteTable: "stock", Columns: idCols,
		Where: ge("item", 10000),
	}))
	partSchema := types.NewSchema(
		types.Column{Name: "pid", Type: types.KindInt},
		types.Column{Name: "pname", Type: types.KindString},
		types.Column{Name: "critical", Type: types.KindBool},
	)
	must(cat.DefineTable("parts", partSchema))
	must(cat.MapSimple(ctx, "parts", "partsdb", "parts"))
	must(e.Analyze(ctx))

	// --- Federated analytics over the WAN. ---
	fmt.Println("Critical parts low on stock (3 sites, predicates pushed):")
	start := time.Now()
	res, err := e.Query(ctx, `
		SELECT p.pname, SUM(s.qty) AS total
		FROM stock s JOIN parts p ON s.part = p.pid
		WHERE p.critical = TRUE
		GROUP BY p.pname HAVING SUM(s.qty) < 22000 ORDER BY total LIMIT 5`)
	must(err)
	fmt.Print(res)
	fmt.Printf("(%v over the simulated WAN)\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("\nDistributed plan:")
	out, err := e.Explain(ctx, "SELECT p.pname FROM stock s JOIN parts p ON s.part = p.pid WHERE s.qty < 5")
	must(err)
	fmt.Print(out)

	// --- Semijoin vs ship-all over the WAN. ---
	q := `SELECT COUNT(*) FROM parts p JOIN stock s ON p.pid = s.part WHERE p.pid < 4`
	e.PlanOptions().ForceStrategy = plan.StrategyShipAll
	t1 := timeQuery(ctx, e, q)
	e.PlanOptions().ForceStrategy = plan.StrategySemiJoin
	t2 := timeQuery(ctx, e, q)
	e.PlanOptions().ForceStrategy = plan.StrategyAuto
	fmt.Printf("\nJoin of 4 parts against 20000 stock rows over a %v link:\n", link.Latency)
	fmt.Printf("  ship-all: %v\n  semijoin: %v  (ships 4 keys instead of the stock table)\n",
		t1.Round(time.Millisecond), t2.Round(time.Millisecond))

	// --- A stock transfer between warehouses: one global transaction,
	// two participants, two-phase commit. ---
	fmt.Println("\nTransferring 10 units of item 100 (east) and item 15000 (west):")
	n, err := e.Exec(ctx, "UPDATE stock SET qty = qty - 10 WHERE item = 100 OR item = 15000")
	must(err)
	fmt.Printf("updated %d rows atomically across %d sites\n", n,
		len(e.Coordinator().Log().Decisions()[0].Participants))
	res, err = e.Query(ctx, "SELECT item, qty FROM stock WHERE item = 100 OR item = 15000 ORDER BY item")
	must(err)
	fmt.Print(res)
}

func buildWarehouse(name string, base, n int) *relstore.Store {
	st := relstore.New(name)
	must(st.CreateTable("stock", types.NewSchema(
		types.Column{Name: "item", Type: types.KindInt},
		types.Column{Name: "qty", Type: types.KindInt},
		types.Column{Name: "part", Type: types.KindInt},
	), 0))
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(base + i)),
			types.NewInt(int64((i*13)%50 + 20)),
			types.NewInt(int64(i % 40)),
		}
	}
	mustN(st.Insert(context.Background(), "stock", rows))
	return st
}

func buildParts(n int) *relstore.Store {
	st := relstore.New("partsdb")
	must(st.CreateTable("parts", types.NewSchema(
		types.Column{Name: "pid", Type: types.KindInt},
		types.Column{Name: "pname", Type: types.KindString},
		types.Column{Name: "critical", Type: types.KindBool},
	), 0))
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("part-%02d", i)),
			types.NewBool(i%4 == 0),
		}
	}
	mustN(st.Insert(context.Background(), "parts", rows))
	return st
}

func timeQuery(ctx context.Context, e *gis.Engine, q string) time.Duration {
	start := time.Now()
	_, err := e.Query(ctx, q)
	must(err)
	return time.Since(start)
}

// lt and ge build the partition predicates for the fragment mappings.
func lt(col string, v int64) expr.Expr {
	return expr.NewBinary(expr.OpLt, expr.NewColRef("", col), expr.NewConst(types.NewInt(v)))
}

func ge(col string, v int64) expr.Expr {
	return expr.NewBinary(expr.OpGe, expr.NewColRef("", col), expr.NewConst(types.NewInt(v)))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustN(_ int64, err error) { must(err) }
