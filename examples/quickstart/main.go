// Quickstart: build a three-source federation in process — a relational
// store, a key-value store, and a CSV file — define a global schema over
// them, and run federated SQL including a cross-source join and a global
// aggregate. This is the smallest complete use of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"gis"
	"gis/internal/filestore"
	"gis/internal/kvstore"
	"gis/internal/relstore"
	"gis/internal/types"
)

func main() {
	ctx := context.Background()
	e := gis.New()

	// --- Component system 1: a relational store with customers. ---
	rel := relstore.New("crm")
	custSchema := types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "name", Type: types.KindString},
		types.Column{Name: "city", Type: types.KindString},
	)
	must(rel.CreateTable("customers", custSchema, 0))
	mustN(rel.Insert(ctx, "customers", []types.Row{
		{types.NewInt(1), types.NewString("alice"), types.NewString("oslo")},
		{types.NewInt(2), types.NewString("bob"), types.NewString("rome")},
		{types.NewInt(3), types.NewString("carol"), types.NewString("oslo")},
	}))

	// --- Component system 2: a key-value store with account balances.
	// It only supports keyed access; the mediator compensates the rest.
	kv := kvstore.New("ledger")
	acctSchema := types.NewSchema(
		types.Column{Name: "cust_id", Type: types.KindInt},
		types.Column{Name: "balance", Type: types.KindFloat},
	)
	must(kv.CreateBucket("accounts", acctSchema, 0))
	mustN(kv.Insert(ctx, "accounts", []types.Row{
		{types.NewInt(1), types.NewFloat(120.5)},
		{types.NewInt(2), types.NewFloat(33.0)},
		{types.NewInt(3), types.NewFloat(910.0)},
	}))

	// --- Component system 3: a CSV file with support tickets. ---
	files := filestore.New("ticketing")
	ticketSchema := types.NewSchema(
		types.Column{Name: "tid", Type: types.KindInt},
		types.Column{Name: "cust_id", Type: types.KindInt},
		types.Column{Name: "severity", Type: types.KindString},
	)
	must(files.RegisterData("tickets",
		"100,1,low\n101,3,high\n102,3,low\n103,2,high\n", ticketSchema))

	// --- Global schema: one table per component table. ---
	cat := e.Catalog()
	must(cat.AddSource(rel))
	must(cat.AddSource(kv))
	must(cat.AddSource(files))
	must(cat.DefineTable("customers", custSchema))
	must(cat.MapSimple(ctx, "customers", "crm", "customers"))
	must(cat.DefineTable("accounts", acctSchema))
	must(cat.MapSimple(ctx, "accounts", "ledger", "accounts"))
	must(cat.DefineTable("tickets", ticketSchema))
	must(cat.MapSimple(ctx, "tickets", "ticketing", "tickets"))
	must(e.Analyze(ctx))

	// --- Federated queries. ---
	fmt.Println("Customers with balances (relational ⋈ key-value):")
	res, err := e.Query(ctx, `
		SELECT c.name, a.balance FROM customers c
		JOIN accounts a ON c.id = a.cust_id
		ORDER BY a.balance DESC`)
	must(err)
	fmt.Print(res)

	fmt.Println("\nHigh-severity tickets per city (all three sources):")
	res, err = e.Query(ctx, `
		SELECT c.city, COUNT(*) AS tickets
		FROM customers c JOIN tickets t ON c.id = t.cust_id
		WHERE t.severity = 'high' AND c.id IN (SELECT cust_id FROM accounts WHERE balance > 30)
		GROUP BY c.city ORDER BY tickets DESC`)
	must(err)
	fmt.Print(res)

	fmt.Println("\nThe distributed plan (EXPLAIN):")
	out, err := e.Explain(ctx, "SELECT c.name FROM customers c JOIN accounts a ON c.id = a.cust_id WHERE a.balance > 100")
	must(err)
	fmt.Print(out)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustN(_ int64, err error) { must(err) }
