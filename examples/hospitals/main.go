// Hospitals: integrate two hospital systems whose schemas conflict in
// every way the paper enumerates — attribute names and order, value
// representations (sex codes vs words), units (pounds vs kilograms), and
// a site attribute that exists in neither system. The mediator presents
// one clean global `patients` table, pushes predicates through the
// mappings (inverting the value map and the unit conversion), and
// de-duplicates patients registered at both sites.
package main

import (
	"context"
	"fmt"
	"log"

	"gis"
	"gis/internal/relstore"
	"gis/internal/types"
)

func main() {
	ctx := context.Background()
	e := gis.New()

	// --- Hospital A: (pid, sex 'M'/'F', weight in kg). ---
	hospA := relstore.New("hospA")
	must(hospA.CreateTable("pat", types.NewSchema(
		types.Column{Name: "pid", Type: types.KindInt},
		types.Column{Name: "sex", Type: types.KindString},
		types.Column{Name: "kg", Type: types.KindFloat},
	), 0))
	mustN(hospA.Insert(ctx, "pat", []types.Row{
		{types.NewInt(1), types.NewString("F"), types.NewFloat(61)},
		{types.NewInt(2), types.NewString("M"), types.NewFloat(83)},
		{types.NewInt(3), types.NewString("F"), types.NewFloat(55)},
		{types.NewInt(7), types.NewString("M"), types.NewFloat(102)},
	}))

	// --- Hospital B: (weight in POUNDS first, then id, then full-word
	// gender) — a different column order, unit, and coding. ---
	hospB := relstore.New("hospB")
	must(hospB.CreateTable("people", types.NewSchema(
		types.Column{Name: "weight_lbs", Type: types.KindFloat},
		types.Column{Name: "person_id", Type: types.KindInt},
		types.Column{Name: "gender", Type: types.KindString},
	), 1))
	mustN(hospB.Insert(ctx, "people", []types.Row{
		{types.NewFloat(134.5), types.NewInt(4), types.NewString("female")},
		{types.NewFloat(225.0), types.NewInt(5), types.NewString("male")},
		{types.NewFloat(224.9), types.NewInt(7), types.NewString("male")}, // also at A!
	}))

	// --- Global schema: patients(id, gender, weight_kg, site). ---
	cat := e.Catalog()
	must(cat.AddSource(hospA))
	must(cat.AddSource(hospB))
	global := types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "gender", Type: types.KindString},
		types.Column{Name: "weight_kg", Type: types.KindFloat},
		types.Column{Name: "site", Type: types.KindString},
	)
	must(cat.DefineTable("patients", global))
	siteA, siteB := types.NewString("A"), types.NewString("B")
	must(cat.MapFragment(ctx, "patients", &gis.Fragment{
		Source: "hospA", RemoteTable: "pat",
		Columns: []gis.ColumnMapping{
			{RemoteCol: 0},
			{RemoteCol: 1, ValueMap: map[string]string{"M": "male", "F": "female"}},
			{RemoteCol: 2},
			{RemoteCol: -1, Const: &siteA},
		},
	}))
	must(cat.MapFragment(ctx, "patients", &gis.Fragment{
		Source: "hospB", RemoteTable: "people",
		Columns: []gis.ColumnMapping{
			{RemoteCol: 1},
			{RemoteCol: 2},
			{RemoteCol: 0, Scale: 0.453592}, // lbs → kg
			{RemoteCol: -1, Const: &siteB},
		},
	}))
	must(e.Analyze(ctx))

	fmt.Println("All patients in the unified representation:")
	res, err := e.Query(ctx, "SELECT * FROM patients ORDER BY id, site")
	must(err)
	fmt.Print(res)

	// The predicate pushes into BOTH sources: hospA receives
	// sex = 'M', hospB receives weight_lbs > 198.4.
	fmt.Println("\nMale patients over 90 kg (predicates translated per source):")
	res, err = e.Query(ctx, `
		SELECT id, weight_kg, site FROM patients
		WHERE gender = 'male' AND weight_kg > 90 ORDER BY id, site`)
	must(err)
	fmt.Print(res)

	fmt.Println("\nHow the mediator decomposed it (EXPLAIN):")
	out, err := e.Explain(ctx,
		"SELECT id FROM patients WHERE gender = 'male' AND weight_kg > 90")
	must(err)
	fmt.Print(out)

	// Patient 7 is registered at both hospitals. Entity resolution:
	// collapse duplicates, preferring one record per id.
	fmt.Println("\nDuplicate registrations (same patient at two sites):")
	res, err = e.Query(ctx, `
		SELECT id, COUNT(*) AS sites FROM patients GROUP BY id HAVING COUNT(*) > 1`)
	must(err)
	fmt.Print(res)

	fmt.Println("\nPer-site averages (unit conversion makes them comparable):")
	res, err = e.Query(ctx, `
		SELECT site, COUNT(*) AS patients, AVG(weight_kg) AS avg_kg
		FROM patients GROUP BY site ORDER BY site`)
	must(err)
	fmt.Print(res)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustN(_ int64, err error) { must(err) }
