// Package gis_test holds the benchmark suite: one testing.B benchmark
// family per evaluation table/figure (T1..F9, see DESIGN.md). The
// gisbench binary prints the full parameter sweeps; these benchmarks
// expose the same code paths to `go test -bench` with stable names.
//
// Simulated-WAN benchmarks use a small link latency so a full -bench run
// stays tractable; the *shape* of the comparisons (who wins, by roughly
// what factor) matches the full-scale gisbench output.
package gis_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gis/internal/core"
	"gis/internal/plan"
	"gis/internal/types"
	"gis/internal/workload"
)

var benchCtx = context.Background()

// benchLink is the simulated WAN used by remote benchmarks.
var benchLink = workload.Link{Latency: 500 * time.Microsecond, BytesPerSec: 50 << 20}

func mustQuery(b *testing.B, e *core.Engine, q string) {
	b.Helper()
	if _, err := e.Query(benchCtx, q); err != nil {
		b.Fatal(err)
	}
}

// ---- T1: selection pushdown vs ship-everything ----

func benchmarkT1(b *testing.B, push bool, sel float64) {
	f, err := workload.TwoTable(context.Background(), 100, 20000, true, benchLink)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	f.Engine.PlanOptions().PushFilters = push
	q := fmt.Sprintf("SELECT oid, amount FROM orders WHERE amount < %g", sel*1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, f.Engine, q)
	}
}

func BenchmarkT1Pushdown_Sel001(b *testing.B) { benchmarkT1(b, true, 0.01) }
func BenchmarkT1ShipAll_Sel001(b *testing.B)  { benchmarkT1(b, false, 0.01) }
func BenchmarkT1Pushdown_Sel100(b *testing.B) { benchmarkT1(b, true, 1.0) }
func BenchmarkT1ShipAll_Sel100(b *testing.B)  { benchmarkT1(b, false, 1.0) }

// ---- T2/F7: distributed join strategies ----

func benchmarkT2(b *testing.B, strat plan.Strategy, leftRows int) {
	f, err := workload.TwoTable(context.Background(), 2000, 20000, true, benchLink)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	f.Engine.PlanOptions().ForceStrategy = strat
	q := fmt.Sprintf("SELECT COUNT(*) FROM customers c JOIN orders o ON c.id = o.cust_id WHERE c.id < %d", leftRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, f.Engine, q)
	}
}

func BenchmarkT2JoinStrategyShipAll_Left10(b *testing.B)  { benchmarkT2(b, plan.StrategyShipAll, 10) }
func BenchmarkT2JoinStrategySemiJoin_Left10(b *testing.B) { benchmarkT2(b, plan.StrategySemiJoin, 10) }
func BenchmarkT2JoinStrategyBind_Left10(b *testing.B)     { benchmarkT2(b, plan.StrategyBind, 10) }
func BenchmarkT2JoinStrategyShipAll_Left1000(b *testing.B) {
	benchmarkT2(b, plan.StrategyShipAll, 1000)
}
func BenchmarkT2JoinStrategySemiJoin_Left1000(b *testing.B) {
	benchmarkT2(b, plan.StrategySemiJoin, 1000)
}

// F7 is the crossover sweep of the same axis; the bench exposes the two
// extreme points.
func BenchmarkF7SemijoinCrossoverLow(b *testing.B)  { benchmarkT2(b, plan.StrategySemiJoin, 5) }
func BenchmarkF7SemijoinCrossoverHigh(b *testing.B) { benchmarkT2(b, plan.StrategySemiJoin, 2000) }

// ---- F3: join-order search ----

func benchmarkF3(b *testing.B, n int, algo plan.JoinOrderAlgo) {
	rels := []plan.RelInfo{{Rows: 1e6}}
	var preds []plan.PredInfo
	for i := 1; i < n; i++ {
		rows := float64(10 * i)
		rels = append(rels, plan.RelInfo{Rows: rows})
		preds = append(preds, plan.PredInfo{A: 0, B: i, Sel: 1 / rows})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.OrderSearch(rels, preds, algo)
	}
}

func BenchmarkF3JoinOrderDP5(b *testing.B)      { benchmarkF3(b, 5, plan.OrderDP) }
func BenchmarkF3JoinOrderDP10(b *testing.B)     { benchmarkF3(b, 10, plan.OrderDP) }
func BenchmarkF3JoinOrderGreedy10(b *testing.B) { benchmarkF3(b, 10, plan.OrderGreedy) }
func BenchmarkF3JoinOrderGreedy50(b *testing.B) { benchmarkF3(b, 50, plan.OrderGreedy) }

// ---- T4: fan-out scalability ----

func benchmarkT4(b *testing.B, k int, parallel bool) {
	f, err := workload.Partitioned(context.Background(), k, 16000/k, true, benchLink)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	f.Engine.PlanOptions().ParallelFragments = parallel
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, f.Engine, "SELECT SUM(amount) FROM events")
	}
}

func BenchmarkT4FanOutSequential4(b *testing.B)  { benchmarkT4(b, 4, false) }
func BenchmarkT4FanOutParallel4(b *testing.B)    { benchmarkT4(b, 4, true) }
func BenchmarkT4FanOutSequential16(b *testing.B) { benchmarkT4(b, 16, false) }
func BenchmarkT4FanOutParallel16(b *testing.B)   { benchmarkT4(b, 16, true) }

// ---- F5: mediation overhead ----

func benchmarkF5(b *testing.B, table, where string) {
	f, err := workload.Heterogeneous(context.Background(), 50000, false, workload.Link{})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	q := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s", table, where)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, f.Engine, q)
	}
}

func BenchmarkF5MediationNative(b *testing.B) { benchmarkF5(b, "orders_native", "rg = 'N'") }
func BenchmarkF5MediationMediated(b *testing.B) {
	benchmarkF5(b, "orders_mediated", "region = 'north'")
}

// ---- T6: atomic commitment ----

func benchmarkT6(b *testing.B, n int) {
	f, err := workload.TxnStores(context.Background(), n, 50, true, benchLink)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Engine.Exec(benchCtx, "UPDATE accounts SET balance = balance + 1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT6Commit1(b *testing.B) { benchmarkT6(b, 1) }
func BenchmarkT6Commit2(b *testing.B) { benchmarkT6(b, 2) }
func BenchmarkT6Commit4(b *testing.B) { benchmarkT6(b, 4) }
func BenchmarkT6Commit8(b *testing.B) { benchmarkT6(b, 8) }

// ---- T8: capability-restricted wrappers ----

func benchmarkT8(b *testing.B, table string) {
	f, err := workload.Capability(context.Background(), 20000)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	q := fmt.Sprintf("SELECT COUNT(*), SUM(amount) FROM %s WHERE region = 'north'", table)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, f.Engine, q)
	}
}

func BenchmarkT8CapabilityRelational(b *testing.B) { benchmarkT8(b, "orders_rel") }
func BenchmarkT8CapabilityKeyValue(b *testing.B)   { benchmarkT8(b, "orders_kv") }
func BenchmarkT8CapabilityDocument(b *testing.B)   { benchmarkT8(b, "orders_doc") }
func BenchmarkT8CapabilityFile(b *testing.B)       { benchmarkT8(b, "orders_file") }

// ---- F9: optimizer ablation ----

func benchmarkF9(b *testing.B, tweak func(*plan.Options)) {
	f, err := workload.TwoTable(context.Background(), 2000, 20000, true, benchLink)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	opts := plan.DefaultOptions()
	tweak(opts)
	*f.Engine.PlanOptions() = *opts
	q := `SELECT c.segment, COUNT(*) FROM customers c JOIN orders o ON c.id = o.cust_id
	      WHERE o.amount < 100 AND c.id < 500 GROUP BY c.segment`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, f.Engine, q)
	}
}

func BenchmarkF9AblationFull(b *testing.B) { benchmarkF9(b, func(*plan.Options) {}) }
func BenchmarkF9AblationNoPushdown(b *testing.B) {
	benchmarkF9(b, func(o *plan.Options) { o.PushFilters = false })
}
func BenchmarkF9AblationNoPruning(b *testing.B) {
	benchmarkF9(b, func(o *plan.Options) { o.PruneColumns = false })
}
func BenchmarkF9AblationShipAll(b *testing.B) {
	benchmarkF9(b, func(o *plan.Options) { o.ForceStrategy = plan.StrategyShipAll })
}
func BenchmarkF9AblationSequentialFragments(b *testing.B) {
	benchmarkF9(b, func(o *plan.Options) { o.ParallelFragments = false })
}
func BenchmarkF9AblationNoAggPushdown(b *testing.B) {
	benchmarkF9(b, func(o *plan.Options) { o.PushAggregates = false })
}

// ---- micro-benchmarks of the engine itself (no network) ----

func BenchmarkMicroParseOnly(b *testing.B) {
	f, err := workload.TwoTable(context.Background(), 10, 10, false, workload.Link{})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	q := "SELECT c.name, COUNT(*) FROM customers c JOIN orders o ON c.id = o.cust_id WHERE o.amount > 10 GROUP BY c.name ORDER BY c.name LIMIT 5"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Engine.Explain(benchCtx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroLocalScan100k(b *testing.B) {
	f, err := workload.TwoTable(context.Background(), 100, 100000, false, workload.Link{})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, f.Engine, "SELECT COUNT(*) FROM orders WHERE amount < 500")
	}
}

func BenchmarkMicroLocalJoin(b *testing.B) {
	f, err := workload.TwoTable(context.Background(), 1000, 20000, false, workload.Link{})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, f.Engine, "SELECT COUNT(*) FROM customers c JOIN orders o ON c.id = o.cust_id")
	}
}

func BenchmarkMicroInsert(b *testing.B) {
	f, err := workload.TwoTable(context.Background(), 10, 10, false, workload.Link{})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("INSERT INTO customers (id, name, segment) VALUES (%d, 'n', 'retail')", 1000+i)
		if _, err := f.Engine.Exec(benchCtx, q); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = types.Null

// ---- Observability: distributed-tracing overhead ----
//
// Same T1/T2 code paths with per-statement tracing toggled. With
// tracing off the only obs costs left are the always-on counters, the
// plan-feedback record at stream end, and one nil span check per
// operator; the acceptance budget is < 5% vs. the traced run being
// however much slower it wants (see EXPERIMENTS.md, "Observability
// overhead"). With tracing on, the full federation-wide machinery runs:
// span tree, wire trace context, remote subtree trailer, stitching.

func benchmarkObsTracing(b *testing.B, traced, join bool) {
	custRows := 100
	if join {
		custRows = 2000
	}
	f, err := workload.TwoTable(context.Background(), custRows, 20000, true, benchLink)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	f.Engine.SetTracing(traced)
	q := "SELECT oid, amount FROM orders WHERE amount < 10"
	if join {
		q = "SELECT COUNT(*) FROM customers c JOIN orders o ON c.id = o.cust_id WHERE c.id < 10"
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, f.Engine, q)
	}
}

func BenchmarkObsTracingOff_T1(b *testing.B) { benchmarkObsTracing(b, false, false) }
func BenchmarkObsTracingOn_T1(b *testing.B)  { benchmarkObsTracing(b, true, false) }
func BenchmarkObsTracingOff_T2(b *testing.B) { benchmarkObsTracing(b, false, true) }
func BenchmarkObsTracingOn_T2(b *testing.B)  { benchmarkObsTracing(b, true, true) }
