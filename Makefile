GO ?= go

.PHONY: build test race lint lint-fixtures lint-stats fmt vet check chaos bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project invariant analyzers (stdlib-only driver; see DESIGN.md).
lint:
	$(GO) run ./cmd/gislint ./...

# Assert every analyzer still fires on its fixture package (guards
# against an analyzer silently going blind). Covers the interprocedural
# fixtures and the sqlship/goleak suites; any unexpected-finding diff is
# a hard failure.
lint-fixtures:
	$(GO) test ./internal/lint -run 'TestFixtures|TestSuppressions|TestSummary|TestCallGraph' -count=1

# Findings-by-analyzer counts plus call-graph/SCC dimensions over the
# whole module (one run is recorded in EXPERIMENTS.md).
lint-stats:
	$(GO) run ./cmd/gislint -stats ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# The full gate: gofmt, vet, gislint, build, race-enabled tests.
check:
	sh scripts/check.sh

# Seeded fault-injection stress tests: wire, union, bind-join, 2PC
# (see DESIGN.md "Resilience & fault model").
chaos:
	$(GO) test -race -run TestChaos ./...

bench:
	$(GO) test -bench=. -benchmem
