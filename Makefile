GO ?= go

.PHONY: build test race lint lint-ratchet lint-fixtures lint-concurrency lint-deadlock lint-stats fmt vet check chaos overload bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project invariant analyzers (stdlib-only driver; see DESIGN.md).
# Baseline-aware: known perf-lint findings snapshotted in
# lint.baseline.json are absorbed, anything new fails. After fixing
# findings, shrink the snapshot with
#   go run ./cmd/gislint -baseline lint.baseline.json -update-baseline ./...
# and commit the smaller file — the ratchet only turns one way.
lint: lint-ratchet

lint-ratchet:
	$(GO) run ./cmd/gislint -baseline lint.baseline.json ./...

# Assert every analyzer still fires on its fixture package (guards
# against an analyzer silently going blind). Covers the interprocedural
# fixtures, the sqlship/goleak suites, the concurrency-safety suites
# (lockguard/atomicmix/wglifecycle/chanmisuse), the deadlock suites
# (lockorder/selfdeadlock/blockcycle, plus the TestDeadlock* runtime
# confirmation), the hot-path perf fixtures, and the
# hotness/baseline/changed-mode unit tests; any unexpected-finding diff
# is a hard failure.
lint-fixtures:
	$(GO) test ./internal/lint -run 'TestFixtures|TestSuppressions|TestSummary|TestCallGraph|TestHotness|TestBaseline|TestLoadBaseline|TestChanged|TestDeadlock' -count=1

# Concurrency-safety analyzers alone, at their native error severity
# (no baseline: a lock-protocol finding is a bug, not ratcheted debt).
lint-concurrency:
	$(GO) run ./cmd/gislint -only lockguard,atomicmix,wglifecycle,chanmisuse ./...

# Deadlock analyzers alone, at their native error severity (no
# baseline: a lock-order cycle, self-deadlock, or lock-wait cycle is a
# hang waiting for its interleaving, never ratcheted debt). The
# module-wide lock-order graph itself is inspectable with
#   go run ./cmd/gislint -dot lockorder ./...
lint-deadlock:
	$(GO) run ./cmd/gislint -only lockorder,selfdeadlock,blockcycle ./...

# Findings-by-analyzer counts plus call-graph/SCC dimensions, the
# hot-set census, and the guard-model census (guardable structs, data
# fields, accesses, inferred guarded fields) over the whole module
# (one run is recorded in EXPERIMENTS.md).
lint-stats:
	$(GO) run ./cmd/gislint -stats ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# The full gate: gofmt, vet, gislint, build, race-enabled tests.
check:
	sh scripts/check.sh

# Seeded fault-injection stress tests: wire, union, bind-join, 2PC
# (see DESIGN.md "Resilience & fault model").
chaos:
	$(GO) test -race -run TestChaos ./...

# Overload robustness: the multi-tenant admission chaos suite (memory
# ceiling, fair shedding, goroutine-leak checks under -race) plus a
# quick OV1 overload bench, JSON schema-validated (see DESIGN.md
# "Admission, quotas & backpressure").
overload:
	$(GO) test -race -run TestChaosOverload -count=1 ./internal/core
	$(GO) run ./cmd/gisbench -overload -tenants 8 -scale 0.05 -reps 1 -latency 200us -json | $(GO) run ./scripts/benchjson

bench:
	$(GO) test -bench=. -benchmem
