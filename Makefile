GO ?= go

.PHONY: build test race lint fmt vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project invariant analyzers (stdlib-only driver; see DESIGN.md).
lint:
	$(GO) run ./cmd/gislint ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# The full gate: gofmt, vet, gislint, build, race-enabled tests.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem
