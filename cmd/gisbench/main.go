// Command gisbench regenerates the evaluation tables and figures: it
// builds each experiment's synthetic federation, runs the parameter
// sweep, and prints the rows EXPERIMENTS.md records.
//
// Usage:
//
//	gisbench                 # run every experiment at full scale
//	gisbench -exp T1,F7      # run selected experiments
//	gisbench -scale 0.1      # shrink workloads 10x (quick runs)
//	gisbench -latency 5ms    # simulated WAN latency per frame
//	gisbench -reps 5         # median-of-N timing
//	gisbench -json           # one experiments.Record JSON object per line
//	gisbench -quick          # smoke configuration: tiny scale, 1 rep, T1+F3
//	gisbench -overload       # admission-control stress (OV1): admitted/shed/p50/p99
//	gisbench -tenants 16     # concurrent tenant clients for -overload
//
// With -json each experiment emits one experiments.Record object on
// stdout (schema documented in EXPERIMENTS.md) and the banner moves to
// stderr, so the stream can be piped straight into a validator or
// appended to a results log.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gis/internal/experiments"
)

func main() {
	var (
		expList = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		scale   = flag.Float64("scale", 1.0, "workload size multiplier")
		latency = flag.Duration("latency", 2*time.Millisecond, "simulated link latency")
		bwMB    = flag.Int64("bw", 50, "simulated link bandwidth (MiB/s)")
		reps    = flag.Int("reps", 3, "repetitions per measurement (median)")
		asJSON  = flag.Bool("json", false, "emit one JSON record per experiment instead of tables")
		quick   = flag.Bool("quick", false, "smoke run: scale 0.02, 1 rep, experiments T1,F3 unless -exp is set")

		overload = flag.Bool("overload", false, "run the OV1 overload experiment (admission shed + latency percentiles)")
		tenants  = flag.Int("tenants", 8, "concurrent tenant clients for -overload")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	sc.Rows = *scale
	sc.Reps = *reps
	sc.Link.Latency = *latency
	sc.Link.BytesPerSec = *bwMB << 20
	sc.Tenants = *tenants

	var ids []string
	if *quick {
		sc.Rows = 0.02
		sc.Reps = 1
		sc.Link.Latency = 100 * time.Microsecond
		ids = []string{"T1", "F3"}
	}
	if *overload {
		ids = []string{"OV1"}
	}
	if *expList != "" {
		ids = strings.Split(*expList, ",")
	} else if !*quick && !*overload {
		ids = []string{"T1", "T2", "F3", "T4", "F5", "T6", "F7", "T8", "F9"}
	}

	// The banner yields stdout to the JSON stream under -json.
	banner := os.Stdout
	if *asJSON {
		banner = os.Stderr
	}
	enc := json.NewEncoder(os.Stdout)

	start := time.Now()
	fmt.Fprintf(banner, "gisbench: scale=%.2f link=%v/%dMiBps reps=%d\n\n", sc.Rows, sc.Link.Latency, sc.Link.BytesPerSec>>20, sc.Reps)
	failed := false
	for _, id := range ids {
		expStart := time.Now()
		tab, err := experiments.ByID(context.Background(), strings.TrimSpace(id), sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed = true
			continue
		}
		if *asJSON {
			if err := enc.Encode(tab.Record(sc, time.Since(expStart), time.Now())); err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: encode: %v\n", id, err)
				failed = true
			}
			continue
		}
		fmt.Println(tab)
	}
	fmt.Fprintf(banner, "total: %v\n", time.Since(start).Round(time.Millisecond))
	if failed {
		os.Exit(1)
	}
}
