// Command gisbench regenerates the evaluation tables and figures: it
// builds each experiment's synthetic federation, runs the parameter
// sweep, and prints the rows EXPERIMENTS.md records.
//
// Usage:
//
//	gisbench                 # run every experiment at full scale
//	gisbench -exp T1,F7      # run selected experiments
//	gisbench -scale 0.1      # shrink workloads 10x (quick runs)
//	gisbench -latency 5ms    # simulated WAN latency per frame
//	gisbench -reps 5         # median-of-N timing
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gis/internal/experiments"
)

func main() {
	var (
		expList = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		scale   = flag.Float64("scale", 1.0, "workload size multiplier")
		latency = flag.Duration("latency", 2*time.Millisecond, "simulated link latency")
		bwMB    = flag.Int64("bw", 50, "simulated link bandwidth (MiB/s)")
		reps    = flag.Int("reps", 3, "repetitions per measurement (median)")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	sc.Rows = *scale
	sc.Reps = *reps
	sc.Link.Latency = *latency
	sc.Link.BytesPerSec = *bwMB << 20

	start := time.Now()
	var ids []string
	if *expList != "" {
		ids = strings.Split(*expList, ",")
	} else {
		ids = []string{"T1", "T2", "F3", "T4", "F5", "T6", "F7", "T8", "F9"}
	}
	fmt.Printf("gisbench: scale=%.2f link=%v/%dMiBps reps=%d\n\n", *scale, *latency, *bwMB, *reps)
	failed := false
	for _, id := range ids {
		tab, err := experiments.ByID(strings.TrimSpace(id), sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(tab)
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	if failed {
		os.Exit(1)
	}
}
