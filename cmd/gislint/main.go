// Command gislint is the repo's custom static-analysis driver. It loads
// and type-checks packages using only the standard library, then runs
// the project-specific analyzers from internal/lint in parallel:
//
//	iterclose    exec/source iterators closed or handed off on every path
//	errdrop      no silently discarded error results
//	valuecompare no raw ==/!= on types.Value or Value-bearing structs
//	exhaustive   switches over plan/expr/kind vocabularies stay complete
//	spanfinish   obs spans reach End on every path out of the starter
//	ctxflow      no context.Background/TODO outside main; contexts flow
//	lockheld     no mutex held across an RPC, channel op, or Wait
//	sqlship      shipped SQL text comes from builders/constants, not assembly
//	goleak       library goroutines carry a cancellation path
//	lockguard    fields a mutex guards at most sites are guarded at all
//	atomicmix    no mixing of sync/atomic and plain access to one field
//	wglifecycle  WaitGroup Add/Done/Wait ordered so Wait cannot miss work
//	chanmisuse   no close/send on a possibly-closed channel; spawned sends guarded
//	lockorder    no lock-order cycles: one global acquisition order for every mutex pair
//	selfdeadlock no re-acquisition of a held non-reentrant mutex (double Lock, upgrade)
//	blockcycle   no parking on a channel/WaitGroup while holding a lock the waker needs
//	hotalloc     no per-row allocations in hot executor/codec code (warning)
//	boxing       no scalar-to-interface boxing in hot code (warning)
//	hotdefer     no defer inside hot loops (warning)
//	valcopy      no large-struct by-value traffic in hot code (warning)
//
// Usage:
//
//	gislint [-only name[,name]] [-skip name[,name]] [-json|-sarif] [-v] [-stats] [-list]
//	        [-baseline file [-update-baseline]] [-changed git-ref] [-dot lockorder] [packages]
//
// Correctness analyzers report errors: any finding fails the run.
// Performance analyzers report warnings and are normally gated through
// the ratchet: -baseline lint.baseline.json absorbs the recorded debt
// and reports only regressions; -update-baseline rewrites the snapshot
// after a deliberate change.
//
// Packages are directory patterns ("./...", "./internal/exec"); the
// default is ./... from the current directory. -changed <git-ref>
// narrows the matched packages to those whose files differ from the ref
// (per git diff, plus untracked files) and the packages that
// transitively import them, so an edit-lint loop pays only for the
// blast radius of the edit. Diagnostics print as
// file:line:col (or a JSON array with -json) and any finding makes the
// driver exit 1 (2 on load or type-check failure), so it slots directly
// into scripts/check.sh. Individual findings can be waived in source
// with `//lint:ignore <analyzer> <reason>` — the reason is mandatory,
// and a bare suppression is itself reported. Parsing fans out across a
// bounded worker pool; the wall-time summary goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"gis/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("gislint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzer names to exclude")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	asSARIF := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log on stdout")
	verbose := fs.Bool("v", false, "report per-analyzer wall time on stderr")
	stats := fs.Bool("stats", false, "report findings per analyzer, call-graph size, hot-set, guard-model and lock-order census on stderr")
	dotGraph := fs.String("dot", "", "emit a Graphviz DOT graph on stdout and exit; the only supported graph is 'lockorder'")
	list := fs.Bool("list", false, "list analyzers and exit")
	baselinePath := fs.String("baseline", "", "report only findings not absorbed by this ratchet snapshot")
	changedRef := fs.String("changed", "", "lint only packages changed since this git ref, plus their reverse dependencies")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline snapshot from this run's findings and exit clean")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(os.Stderr, "gislint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "gislint: -update-baseline requires -baseline <path>")
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, ok := filterAnalyzers(analyzers, *only, *skip)
	if !ok {
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gislint:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gislint:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "gislint: no packages matched")
		return 2
	}
	if *changedRef != "" {
		files, err := gitChangedFiles(loader.ModuleRoot, *changedRef)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gislint:", err)
			return 2
		}
		matched := len(dirs)
		dirs, err = loader.ChangedDirs(dirs, files)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gislint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "gislint: -changed %s: %d of %d package(s) affected\n", *changedRef, len(dirs), matched)
		if len(dirs) == 0 {
			return 0
		}
	}
	if err := loader.Preparse(dirs, 0); err != nil {
		fmt.Fprintln(os.Stderr, "gislint:", err)
		return 2
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gislint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	if *dotGraph != "" {
		if *dotGraph != "lockorder" {
			fmt.Fprintf(os.Stderr, "gislint: unknown -dot graph %q (supported: lockorder)\n", *dotGraph)
			return 2
		}
		ip := lint.BuildInterproc(loader)
		if ip.Locks == nil {
			fmt.Fprintln(os.Stderr, "gislint: no lock-order model built")
			return 2
		}
		fmt.Print(ip.Locks.Dot())
		return 0
	}

	diags, info := lint.RunWithInfo(loader, pkgs, analyzers)
	absorbed := 0
	if *baselinePath != "" {
		if *updateBaseline {
			b := lint.NewBaseline(loader.ModuleRoot, diags)
			if err := b.WriteBaseline(*baselinePath); err != nil {
				fmt.Fprintln(os.Stderr, "gislint:", err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "gislint: baseline %s rewritten with %d finding(s) under %d key(s)\n",
				*baselinePath, len(diags), len(b))
			return 0
		}
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gislint:", err)
			return 2
		}
		diags, absorbed = b.Regressions(loader.ModuleRoot, diags)
	}
	switch {
	case *asJSON:
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "gislint:", err)
			return 2
		}
	case *asSARIF:
		if err := writeSARIF(os.Stdout, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "gislint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *verbose || *stats {
		printRunInfo(os.Stderr, info, *verbose, *stats)
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	ratchet := ""
	if *baselinePath != "" {
		ratchet = fmt.Sprintf(", %d baselined", absorbed)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gislint: %d finding(s) in %d package(s), %d analyzer(s)%s, %s\n",
			len(diags), len(pkgs), len(analyzers), ratchet, elapsed)
		return 1
	}
	fmt.Fprintf(os.Stderr, "gislint: clean, %d package(s), %d analyzer(s)%s, %s\n",
		len(pkgs), len(analyzers), ratchet, elapsed)
	return 0
}

// printRunInfo renders -v (per-analyzer wall time) and -stats (findings
// per analyzer plus the shared call graph's dimensions). Analyzer walls
// are summed over concurrent package passes, so they can exceed — and
// together far exceed — the end-to-end elapsed time.
func printRunInfo(w *os.File, info *lint.RunInfo, verbose, stats bool) {
	for _, s := range info.Analyzers {
		switch {
		case verbose && stats:
			fmt.Fprintf(w, "gislint: %-14s %8s  %d finding(s)\n", s.Name, s.Wall.Round(time.Microsecond), s.Findings)
		case verbose:
			fmt.Fprintf(w, "gislint: %-14s %8s\n", s.Name, s.Wall.Round(time.Microsecond))
		default:
			fmt.Fprintf(w, "gislint: %-14s %d finding(s)\n", s.Name, s.Findings)
		}
	}
	if stats {
		fmt.Fprintf(w, "gislint: call graph: %d function(s), %d resolved edge(s), %d SCC(s), largest SCC %d, built in %s\n",
			info.GraphFuncs, info.GraphEdges, info.GraphSCCs, info.GraphMaxSCC, info.InterprocTime.Round(time.Microsecond))
		fmt.Fprintf(w, "gislint: hot set: %d hot function(s), %d hot-loop, %d loop-nested call site(s)\n",
			info.HotFuncs, info.HotLoopFuncs, info.HotSites)
		fmt.Fprintf(w, "gislint: guard model: %d guardable struct(s), %d data field(s), %d access(es), %d guarded field(s)\n",
			info.GuardStructs, info.GuardFields, info.GuardAccesses, info.GuardedFields)
		fmt.Fprintf(w, "gislint: lock order: %d class(es), %d edge(s), %d SCC(s), %d cycle(s), max witness %d step(s)\n",
			info.LockClasses, info.LockEdges, info.LockSCCs, info.LockCycles, info.LockMaxWitness)
	}
}

// gitChangedFiles lists files differing from ref — committed or in the
// working tree, plus untracked files — as module-root-relative paths.
func gitChangedFiles(root, ref string) ([]string, error) {
	diff := exec.Command("git", "-C", root, "diff", "--name-only", ref, "--")
	out, err := diff.Output()
	if err != nil {
		return nil, fmt.Errorf("git diff --name-only %s: %w", ref, err)
	}
	untracked := exec.Command("git", "-C", root, "ls-files", "--others", "--exclude-standard")
	more, err := untracked.Output()
	if err != nil {
		return nil, fmt.Errorf("git ls-files --others: %w", err)
	}
	var files []string
	for _, line := range strings.Split(string(out)+string(more), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			files = append(files, line)
		}
	}
	return files, nil
}

// filterAnalyzers applies -only then -skip; unknown names are an error
// so typos cannot silently disable a check.
func filterAnalyzers(all []*lint.Analyzer, only, skip string) ([]*lint.Analyzer, bool) {
	selected := all
	if only != "" {
		byName := nameSet(only)
		selected = nil
		for _, a := range all {
			if byName[a.Name] {
				selected = append(selected, a)
				delete(byName, a.Name)
			}
		}
		if !reportUnknown(byName) {
			return nil, false
		}
	}
	if skip != "" {
		byName := nameSet(skip)
		var kept []*lint.Analyzer
		for _, a := range selected {
			if byName[a.Name] {
				delete(byName, a.Name)
				continue
			}
			kept = append(kept, a)
		}
		if !reportUnknown(byName) {
			return nil, false
		}
		selected = kept
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "gislint: no analyzers selected")
		return nil, false
	}
	return selected, true
}

func nameSet(csv string) map[string]bool {
	set := make(map[string]bool)
	for _, name := range strings.Split(csv, ",") {
		if name = strings.TrimSpace(name); name != "" {
			set[name] = true
		}
	}
	return set
}

func reportUnknown(left map[string]bool) bool {
	for name := range left {
		fmt.Fprintf(os.Stderr, "gislint: unknown analyzer %q\n", name)
		return false
	}
	return true
}

// jsonDiag is the stable machine-readable diagnostic shape.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
