// Command gislint is the repo's custom static-analysis driver. It loads
// and type-checks packages using only the standard library, then runs
// the project-specific analyzers from internal/lint in parallel:
//
//	iterclose    exec/source iterators must be closed or handed off
//	errdrop      no silently discarded error results
//	valuecompare no raw ==/!= on types.Value or Value-bearing structs
//	exhaustive   switches over plan/expr/kind vocabularies stay complete
//
// Usage:
//
//	gislint [-only name[,name]] [-list] [packages]
//
// Packages are directory patterns ("./...", "./internal/exec"); the
// default is ./... from the current directory. Diagnostics print as
// file:line:col and any finding makes the driver exit 1 (2 on load or
// type-check failure), so it slots directly into scripts/check.sh.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gis/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("gislint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			byName[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if byName[a.Name] {
				selected = append(selected, a)
				delete(byName, a.Name)
			}
		}
		for name := range byName {
			fmt.Fprintf(os.Stderr, "gislint: unknown analyzer %q\n", name)
			return 2
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gislint:", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gislint:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "gislint: no packages matched")
		return 2
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gislint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.Run(loader, pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gislint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
