package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"gis/internal/lint"
)

// TestWriteSARIF pins the log shape review tooling depends on: schema
// and version markers, one rule per analyzer, and per-result rule
// binding plus physical location.
func TestWriteSARIF(t *testing.T) {
	analyzers := lint.All()
	diags := []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/core/engine.go", Line: 42, Column: 7},
			Analyzer: "sqlship",
			Message:  "sql text reaching Parse is assembled from query literals and runtime values",
		},
		{
			Pos:      token.Position{Filename: "internal/exec/join.go", Line: 9, Column: 2},
			Analyzer: "goleak",
			Message:  "goroutine has no cancellation path",
		},
		{
			Pos:      token.Position{Filename: "internal/exec/exec.go", Line: 17, Column: 3},
			Analyzer: "hotalloc",
			Message:  "make allocates per row in hot-loop (*sortIter).Next; hoist or reuse a scratch buffer",
		},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, analyzers, diags); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("missing $schema")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "gislint" {
		t.Errorf("driver name = %q, want gislint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) < len(analyzers) {
		t.Errorf("rules = %d, want >= %d (one per analyzer)", len(run.Tool.Driver.Rules), len(analyzers))
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(diags))
	}
	for i, r := range run.Results {
		if r.RuleID != diags[i].Analyzer {
			t.Errorf("result %d ruleId = %q, want %q", i, r.RuleID, diags[i].Analyzer)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d ruleIndex %d does not bind to rule %q", i, r.RuleIndex, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine != diags[i].Pos.Line {
			t.Errorf("result %d location = %+v, want line %d", i, loc, diags[i].Pos.Line)
		}
	}
	// Severity flows from analyzer metadata to both the rule default and
	// each result: correctness findings are errors, perf findings
	// warnings.
	byName := make(map[string]*lint.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	for i, r := range run.Results {
		if want := byName[r.RuleID].Level(); r.Level != want {
			t.Errorf("result %d (%s) level = %q, want %q", i, r.RuleID, r.Level, want)
		}
	}
	if run.Results[0].Level != lint.SeverityError {
		t.Errorf("sqlship result level = %q, want error", run.Results[0].Level)
	}
	if run.Results[2].Level != lint.SeverityWarning {
		t.Errorf("hotalloc result level = %q, want warning", run.Results[2].Level)
	}
	for _, rule := range run.Tool.Driver.Rules {
		a, ok := byName[rule.ID]
		if !ok {
			continue
		}
		if rule.DefaultConfig == nil || rule.DefaultConfig.Level != a.Level() {
			t.Errorf("rule %s defaultConfiguration = %+v, want level %q", rule.ID, rule.DefaultConfig, a.Level())
		}
		if rule.FullDescription == nil || rule.FullDescription.Text == "" {
			t.Errorf("rule %s has no fullDescription", rule.ID)
		}
	}
}

// TestFilterAnalyzers pins the -only/-skip contract, including the
// unknown-name error path.
func TestFilterAnalyzers(t *testing.T) {
	all := lint.All()
	sel, ok := filterAnalyzers(all, "sqlship,goleak", "")
	if !ok || len(sel) != 2 {
		t.Fatalf("-only sqlship,goleak selected %d analyzers (ok=%v)", len(sel), ok)
	}
	sel, ok = filterAnalyzers(all, "", "sqlship")
	if !ok || len(sel) != len(all)-1 {
		t.Fatalf("-skip sqlship kept %d analyzers (ok=%v)", len(sel), ok)
	}
	if _, ok := filterAnalyzers(all, "nosuch", ""); ok {
		t.Error("-only with an unknown name must fail")
	}
}
