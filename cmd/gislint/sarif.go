package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"gis/internal/lint"
)

// SARIF output is the minimal 2.1.0 subset that code-review UIs ingest:
// one run, one tool.driver carrying the analyzer roster as rules, one
// result per diagnostic with a single physical location. Artifact URIs
// are emitted relative to the working directory (with forward slashes)
// so the log stays stable across checkouts. The exact field set is
// documented in DESIGN.md under "Static analysis & invariants".

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifMessage  `json:"shortDescription"`
	FullDescription  *sarifMessage `json:"fullDescription,omitempty"`
	DefaultConfig    *sarifConfig  `json:"defaultConfiguration,omitempty"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders diags as a SARIF 2.1.0 log. The rules array lists
// every analyzer that ran — not just those with findings — so a clean
// run still records what was checked.
func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	ruleIndex := make(map[string]int, len(analyzers))
	ruleLevel := make(map[string]string, len(analyzers))
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(rules)
		ruleLevel[a.Name] = a.Level()
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
			FullDescription:  &sarifMessage{Text: ruleDescription(a)},
			DefaultConfig:    &sarifConfig{Level: a.Level()},
		})
	}
	// Malformed suppressions surface under the pseudo-analyzer
	// "suppress"; give them a rule entry on demand.
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			idx = len(rules)
			ruleIndex[d.Analyzer] = idx
			ruleLevel[d.Analyzer] = lint.SeverityError
			rules = append(rules, sarifRule{
				ID:               d.Analyzer,
				ShortDescription: sarifMessage{Text: "malformed lint:ignore suppression"},
				DefaultConfig:    &sarifConfig{Level: lint.SeverityError},
			})
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     ruleLevel[d.Analyzer],
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(d.Pos.Filename)},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "gislint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ruleDescription expands an analyzer's one-liner with the contract its
// severity encodes, so review UIs can explain why a perf warning does
// not block while a correctness error does.
func ruleDescription(a *lint.Analyzer) string {
	if a.Level() == lint.SeverityWarning {
		return a.Doc + ". Performance rule: findings are per-row waste on the hot path, gated by the lint.baseline.json ratchet rather than failing the build outright."
	}
	return a.Doc + ". Correctness rule: any finding is a bug and fails the build."
}

// sarifURI relativizes path against the working directory and uses
// forward slashes, per the SARIF artifactLocation convention.
func sarifURI(path string) string {
	if wd, err := filepath.Abs("."); err == nil {
		if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}
