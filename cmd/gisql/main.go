// Command gisql is the interactive shell of the federation: it connects
// to one or more gisd component systems (or starts an in-process demo
// federation), auto-imports their tables into a global schema, and runs
// global SQL against the mediator.
//
// Usage:
//
//	gisql -source ny=localhost:7070 -source eu=localhost:7071
//	gisql -demo                       # self-contained demo federation
//	gisql -demo -e "SELECT ..."       # one-shot query
//
// Shell commands: \tables, \sources, \explain <query>, \analyze
// <query>, \trace (span tree of the last statement), \metrics (metrics
// snapshot), \q. Tracing is on by default in the shell; -debug-addr
// additionally serves the introspection endpoint over HTTP.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"gis/internal/admission"
	"gis/internal/catalog"
	"gis/internal/core"
	"gis/internal/faults"
	"gis/internal/obs"
	"gis/internal/relstore"
	"gis/internal/resilience"
	"gis/internal/source"
	"gis/internal/sql"
	"gis/internal/types"
	"gis/internal/wire"
)

type sourceFlag []string

func (s *sourceFlag) String() string { return strings.Join(*s, ",") }

func (s *sourceFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		sources   sourceFlag
		demo      = flag.Bool("demo", false, "start an in-process demo federation")
		config    = flag.String("config", "", "JSON federation description (catalog.Config)")
		oneShot   = flag.String("e", "", "execute one statement and exit")
		noTrace   = flag.Bool("no-trace", false, "disable per-statement tracing")
		debugAddr = flag.String("debug-addr", "", "serve metrics/pprof/sessions on this address")
		resil     = flag.Bool("resilience", true, "retry idempotent reads and shed load from failing sources (circuit breakers)")
		partial   = flag.Bool("partial", false, "degrade to partial results when a non-essential source fails")
		faultPlan = flag.String("fault-plan", "", `client-side seeded fault-injection plan, e.g. "seed=7;ny:err=0.05"`)
		retries   = flag.Int("retries", 2, "retry attempts for idempotent reads (with -resilience)")
		callTO    = flag.Duration("call-timeout", 2*time.Second, "per-attempt deadline for metadata calls (with -resilience)")
		brkThresh = flag.Int("breaker-threshold", 4, "consecutive failures before a source's breaker opens (0 disables)")
		brkCool   = flag.Duration("breaker-cooldown", 500*time.Millisecond, "how long an open breaker rejects calls before probing")
		dialTO    = flag.Duration("connect-timeout", wire.DefaultDialTimeout, "TCP connect timeout for component systems")
		queryLog  = flag.String("query-log", "", "append structured JSON query-log records to this file")
		qlSample  = flag.Float64("query-log-sample", 0, "fraction of fast statements to log (slow ones are always logged)")

		tenant      = flag.String("tenant", "", "tenant to run statements as (rides the wire handshake to component systems)")
		deadline    = flag.Duration("deadline", 0, "default per-statement deadline, propagated to remote fragments (0 = none)")
		maxInflight = flag.Int("max-inflight", 0, "admission: max concurrently executing statements (0 = unlimited)")
		tenantRate  = flag.Float64("tenant-rate", 0, "admission: per-tenant sustained statements/sec (0 = unlimited)")
		tenantQuota = flag.Int64("tenant-quota", 0, "admission: per-tenant result-stream memory quota in bytes (0 = unlimited)")
	)
	flag.Var(&sources, "source", "component system: name=host:port (repeatable)")
	flag.Parse()

	e := core.New()
	e.SetTracing(!*noTrace)
	e.SetPartialResults(*partial)
	if *resil {
		p := resilience.DefaultPolicy()
		p.MaxRetries = *retries
		p.CallTimeout = *callTO
		p.BreakerThreshold = *brkThresh
		p.BreakerCooldown = *brkCool
		if err := e.Catalog().SetResilience(p); err != nil {
			fmt.Fprintf(os.Stderr, "gisql: %v\n", err)
			os.Exit(1)
		}
	}
	if *faultPlan != "" {
		fp, err := faults.ParsePlan(*faultPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gisql: -fault-plan: %v\n", err)
			os.Exit(1)
		}
		clientFaults = fp
	}
	connectTimeout = *dialTO
	clientTenant = *tenant
	if *maxInflight > 0 || *tenantRate > 0 || *tenantQuota > 0 || *deadline > 0 {
		e.SetAdmission(admission.New(admission.Config{
			MaxInFlight:     *maxInflight,
			TenantRate:      *tenantRate,
			MemQuota:        *tenantQuota,
			DefaultDeadline: *deadline,
			// Breaker-style shedding: when any source's breaker is open,
			// over-limit statements are shed instead of queued.
			Degraded: e.Catalog().Health().Degraded,
		}))
	}
	if *queryLog != "" {
		f, err := os.OpenFile(*queryLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gisql: -query-log: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		e.Queries().SetStructured(obs.NewStructuredLog(f, *qlSample, sql.Fingerprint))
	}
	ctx := context.Background()
	if *tenant != "" {
		ctx = admission.WithTenant(ctx, *tenant)
	}

	if *debugAddr != "" {
		go func() {
			h := obs.Handler(obs.Default(), e.Queries(), obs.DefaultFeedback())
			if err := http.ListenAndServe(*debugAddr, h); err != nil {
				fmt.Fprintf(os.Stderr, "gisql: debug endpoint: %v\n", err)
			}
		}()
	}

	switch {
	case *config != "":
		data, err := os.ReadFile(*config)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gisql: %v\n", err)
			os.Exit(1)
		}
		if err := e.ApplyConfig(ctx, data, dialSource); err != nil {
			fmt.Fprintf(os.Stderr, "gisql: %v\n", err)
			os.Exit(1)
		}
	case *demo:
		if err := buildDemo(ctx, e); err != nil {
			fmt.Fprintf(os.Stderr, "gisql: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("demo federation ready: tables customers, orders")
	case len(sources) > 0:
		for _, def := range sources {
			if err := attachSource(ctx, e, def); err != nil {
				fmt.Fprintf(os.Stderr, "gisql: %v\n", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "gisql: provide -source name=addr (repeatable), -config file.json, or -demo")
		os.Exit(2)
	}
	if err := e.Analyze(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gisql: analyze: %v\n", err)
	}

	if *oneShot != "" {
		if err := runStatement(ctx, e, *oneShot); err != nil {
			fmt.Fprintf(os.Stderr, "gisql: %v\n", err)
			os.Exit(1)
		}
		return
	}
	repl(ctx, e)
}

// clientFaults, when set by -fault-plan, injects faults on every
// client-side link; connectTimeout bounds the TCP dial; clientTenant is
// announced in every connection handshake.
var (
	clientFaults   *faults.Plan
	connectTimeout = wire.DefaultDialTimeout
	clientTenant   string
)

// dialOpts assembles the wire options shared by every outbound dial.
func dialOpts(name string) []wire.Option {
	opts := []wire.Option{wire.WithName(name), wire.WithConnectTimeout(connectTimeout)}
	if clientFaults != nil {
		opts = append(opts, wire.WithFaultPlan(clientFaults))
	}
	if clientTenant != "" {
		opts = append(opts, wire.WithTenant(clientTenant))
	}
	return opts
}

// dialSource connects one config-declared component system, applying
// any simulated link parameters it specifies.
func dialSource(ctx context.Context, sc catalog.SourceConfig) (source.Source, error) {
	opts := dialOpts(sc.Name)
	if sc.LatencyMS > 0 || sc.BandwidthMBps > 0 {
		opts = append(opts, wire.WithSimLink(wire.SimLink{
			Latency:     time.Duration(sc.LatencyMS) * time.Millisecond,
			BytesPerSec: int64(sc.BandwidthMBps) << 20,
		}))
	}
	return wire.DialContext(ctx, sc.Addr, opts...)
}

// attachSource dials a gisd endpoint and imports every remote table into
// the global schema under its own name (prefixed with the source name on
// conflict).
func attachSource(ctx context.Context, e *core.Engine, def string) error {
	eq := strings.IndexByte(def, '=')
	if eq < 0 {
		return fmt.Errorf("bad -source %q: want name=addr", def)
	}
	name, addr := def[:eq], def[eq+1:]
	cl, err := wire.DialContext(ctx, addr, dialOpts(name)...)
	if err != nil {
		return err
	}
	if err := e.Catalog().AddSource(cl); err != nil {
		return err
	}
	// Fetch metadata through the catalog's registered source, not the
	// raw client: with -resilience the registered source retries
	// transient failures, so setup survives an unreliable link.
	src, err := e.Catalog().Source(cl.Name())
	if err != nil {
		return err
	}
	tables, err := src.Tables(ctx)
	if err != nil {
		return err
	}
	for _, tbl := range tables {
		if err := ctx.Err(); err != nil {
			return err
		}
		info, err := src.TableInfo(ctx, tbl)
		if err != nil {
			return err
		}
		globalName := tbl
		if err := e.Catalog().DefineTable(globalName, info.Schema); err != nil {
			globalName = name + "_" + tbl
			if err := e.Catalog().DefineTable(globalName, info.Schema); err != nil {
				return err
			}
		}
		if err := e.Catalog().MapSimple(ctx, globalName, name, tbl); err != nil {
			return err
		}
		fmt.Printf("imported %s.%s as %s (%d rows)\n", name, tbl, globalName, info.RowCount)
	}
	return nil
}

// buildDemo assembles a two-store demo federation in process.
func buildDemo(ctx context.Context, e *core.Engine) error {
	ny := relstore.New("ny")
	custSchema := types.NewSchema(
		types.Column{Name: "id", Type: types.KindInt},
		types.Column{Name: "name", Type: types.KindString},
		types.Column{Name: "region", Type: types.KindString},
	)
	if err := ny.CreateTable("customers", custSchema, 0); err != nil {
		return err
	}
	names := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	regionsList := []string{"east", "west"}
	var rows []types.Row
	for i, n := range names {
		rows = append(rows, types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(n),
			types.NewString(regionsList[i%2]),
		})
	}
	if _, err := ny.Insert(ctx, "customers", rows); err != nil {
		return err
	}
	eu := relstore.New("eu")
	ordSchema := types.NewSchema(
		types.Column{Name: "oid", Type: types.KindInt},
		types.Column{Name: "cust_id", Type: types.KindInt},
		types.Column{Name: "amount", Type: types.KindFloat},
	)
	if err := eu.CreateTable("orders", ordSchema, 0); err != nil {
		return err
	}
	rows = nil
	for i := 0; i < 20; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i%len(names) + 1)),
			types.NewFloat(float64((i*37)%500) + 0.5),
		})
	}
	if _, err := eu.Insert(ctx, "orders", rows); err != nil {
		return err
	}
	cat := e.Catalog()
	if err := cat.AddSource(ny); err != nil {
		return err
	}
	if err := cat.AddSource(eu); err != nil {
		return err
	}
	if err := cat.DefineTable("customers", custSchema); err != nil {
		return err
	}
	if err := cat.MapSimple(ctx, "customers", "ny", "customers"); err != nil {
		return err
	}
	if err := cat.DefineTable("orders", ordSchema); err != nil {
		return err
	}
	return cat.MapSimple(ctx, "orders", "eu", "orders")
}

func repl(ctx context.Context, e *core.Engine) {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println(`gisql — type SQL, \tables, \sources, \explain <q>, \analyze <q>, \trace, \metrics, \misest, or \q`)
	var pending strings.Builder
	for {
		if pending.Len() == 0 {
			fmt.Print("gis> ")
		} else {
			fmt.Print("...> ")
		}
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") && pending.Len() == 0 {
			if !command(ctx, e, line) {
				return
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte(' ')
		if !strings.HasSuffix(line, ";") {
			continue
		}
		stmt := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
		pending.Reset()
		if err := runStatement(ctx, e, stmt); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

// command handles backslash commands; returns false to quit.
func command(ctx context.Context, e *core.Engine, line string) bool {
	switch {
	case line == "\\q" || line == "\\quit":
		return false
	case line == "\\tables":
		for _, t := range e.Catalog().Tables() {
			tab, err := e.Catalog().Table(t)
			if err != nil {
				continue
			}
			fmt.Printf("%s %s (%d fragment(s))\n", t, tab.Schema, len(tab.Fragments))
		}
		for _, v := range e.Catalog().Views() {
			body, _ := e.Catalog().View(v)
			fmt.Printf("%s (view) = %s\n", v, body)
		}
	case line == "\\sources":
		for _, s := range e.Catalog().Sources() {
			src, err := e.Catalog().Source(s)
			if err != nil {
				continue
			}
			fmt.Printf("%s [%s] %s\n", s, src.Capabilities(), e.Catalog().Health().For(s).Describe())
		}
	case strings.HasPrefix(line, "\\explain "):
		out, err := e.Explain(ctx, strings.TrimPrefix(line, "\\explain "))
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Print(out)
	case strings.HasPrefix(line, "\\analyze "):
		out, err := e.ExplainAnalyze(ctx, strings.TrimPrefix(line, "\\analyze "))
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Print(out)
	case line == "\\trace":
		tr := e.TraceLast()
		if tr == nil {
			fmt.Println("no trace recorded yet (run a statement first; tracing must be on)")
			break
		}
		fmt.Print(tr.Tree())
	case line == "\\misest":
		printMisestimates(os.Stdout)
	case line == "\\metrics":
		out, err := json.MarshalIndent(obs.Default().Snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Println(string(out))
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", line)
	}
	return true
}

// printMisestimates renders the process-wide plan-feedback store: per
// (operator scope, normalized predicate) estimate-vs-actual history,
// worst misestimates first.
func printMisestimates(w *os.File) {
	entries := obs.DefaultFeedback().Snapshot()
	if len(entries) == 0 {
		fmt.Fprintln(w, "no plan feedback recorded yet (run some statements first)")
		return
	}
	fmt.Fprintf(w, "%-32s %5s %10s %10s %8s %8s  %s\n",
		"scope", "count", "last est", "last act", "q-err", "max", "predicate")
	for _, en := range entries {
		pred := en.Fingerprint
		if len(pred) > 48 {
			pred = pred[:45] + "..."
		}
		fmt.Fprintf(w, "%-32s %5d %10.0f %10d %8.1f %8.1f  %s\n",
			en.Scope, en.Count, en.LastEst, en.LastActual, en.LastQErr, en.MaxQErr, pred)
	}
	if d := obs.DefaultFeedback().Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d entries dropped at capacity)\n", d)
	}
}

func runStatement(ctx context.Context, e *core.Engine, stmt string) error {
	res, err := e.Run(ctx, stmt)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Printf("(%d row(s))\n", len(res.Rows))
	if res.Partial != nil {
		fmt.Fprintf(os.Stderr, "warning: %v\n", res.Partial)
		for _, o := range res.Partial.Failed() {
			fmt.Fprintf(os.Stderr, "  %s (%s): %v\n", o.Source, o.Op, o.Err)
		}
	}
	return nil
}
