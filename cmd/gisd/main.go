// Command gisd serves a component information system over the wire
// protocol so a mediator on another machine (or process) can federate
// it. It can host a relational store loaded from CSV files, a key-value
// bucket, or a raw CSV file source.
//
// Usage:
//
//	gisd -listen :7070 -name ny \
//	     -table customers=./customers.csv:id:int,name:string,region:string \
//	     -table orders=./orders.csv:oid:int,cust_id:int,amount:float
//
// Each -table flag is name=path:col:type[,col:type...]; the first column
// is the primary key. The store is a fully-capable relational engine
// (filters, projection, aggregation, sort, limit, transactions).
//
// With -debug-addr the daemon also serves a runtime introspection
// endpoint: /metrics (JSON metrics snapshot), /sessions (in-flight
// sub-queries), /slow (sub-queries slower than -slow-query, retained
// ring-buffer style), and /debug/pprof/.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gis/internal/admission"
	"gis/internal/faults"
	"gis/internal/obs"
	"gis/internal/relstore"
	"gis/internal/sql"
	"gis/internal/types"
	"gis/internal/wire"
)

// tableFlag accumulates -table definitions.
type tableFlag []string

func (t *tableFlag) String() string { return strings.Join(*t, "; ") }

func (t *tableFlag) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7070", "address to serve on")
		name      = flag.String("name", "gisd", "source name reported to mediators")
		debugAddr = flag.String("debug-addr", "", "serve metrics/pprof/sessions on this address (e.g. 127.0.0.1:6060)")
		slowQuery = flag.Duration("slow-query", 250*time.Millisecond, "retain sub-queries slower than this on /slow")
		faultPlan = flag.String("fault-plan", "", `seeded fault-injection plan, e.g. "seed=7;*:err=0.05,stall=50ms,stallp=0.1"`)
		queryLog  = flag.String("query-log", "", "append structured JSON query-log records to this file")
		qlSample  = flag.Float64("query-log-sample", 0, "fraction of fast sub-queries to log (slow ones are always logged)")

		maxInflight  = flag.Int("max-inflight", 0, "admission: max concurrently executing sub-queries (0 = unlimited)")
		tenantRate   = flag.Float64("tenant-rate", 0, "admission: per-tenant sustained sub-queries/sec (0 = unlimited)")
		tenantQuota  = flag.Int64("tenant-quota", 0, "admission: per-tenant result-stream memory quota in bytes (0 = unlimited)")
		maxFrame     = flag.Int("max-frame-bytes", 0, "reject wire frames larger than this (0 = protocol default 16MiB)")
		creditWindow = flag.Int("credit-window", 0, "flow control: max row frames in flight per stream (0 = protocol default 32)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM, let in-flight sub-queries finish up to this long before closing")

		tables tableFlag
	)
	flag.Var(&tables, "table", "table definition: name=path:col:type[,col:type...] (repeatable)")
	flag.Parse()

	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "gisd: at least one -table is required")
		flag.Usage()
		os.Exit(2)
	}

	store := relstore.New(*name)
	// Bounded startup loop over the -table flags; no query context exists
	// yet and the in-process store's txns cannot block on a wire.
	for _, def := range tables {
		//lint:ignore ctxflow bounded CLI startup loop before any server context exists; loadTable hits only the local store
		if err := loadTable(store, def); err != nil {
			log.Fatalf("gisd: %v", err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var srvOpts []wire.ServerOption
	if *faultPlan != "" {
		fp, err := faults.ParsePlan(*faultPlan)
		if err != nil {
			log.Fatalf("gisd: -fault-plan: %v", err)
		}
		srvOpts = append(srvOpts, wire.WithServerFaults(fp))
		log.Printf("gisd: fault injection armed: %s", *faultPlan)
	}
	if *maxInflight > 0 || *tenantRate > 0 || *tenantQuota > 0 {
		ctrl := admission.New(admission.Config{
			MaxInFlight: *maxInflight,
			TenantRate:  *tenantRate,
			MemQuota:    *tenantQuota,
		})
		srvOpts = append(srvOpts, wire.WithAdmission(ctrl))
		log.Printf("gisd: admission control armed: max-inflight=%d tenant-rate=%.1f tenant-quota=%d",
			*maxInflight, *tenantRate, *tenantQuota)
	}
	if *maxFrame > 0 {
		srvOpts = append(srvOpts, wire.WithServerMaxFrameBytes(*maxFrame))
	}
	if *creditWindow > 0 {
		srvOpts = append(srvOpts, wire.WithServerCreditWindow(*creditWindow))
	}
	srv, err := wire.Serve(ctx, *listen, store, srvOpts...)
	if err != nil {
		log.Fatalf("gisd: %v", err)
	}
	srv.Queries.SetThreshold(*slowQuery)
	if *queryLog != "" {
		f, err := os.OpenFile(*queryLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("gisd: -query-log: %v", err)
		}
		defer f.Close()
		srv.Queries.SetStructured(obs.NewStructuredLog(f, *qlSample, sql.Fingerprint))
	}
	log.Printf("gisd: serving source %q on %s", *name, srv.Addr())

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: obs.Handler(obs.Default(), srv.Queries, obs.DefaultFeedback())}
		go func() {
			log.Printf("gisd: debug endpoint on http://%s/", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("gisd: debug endpoint: %v", err)
			}
		}()
		defer dbg.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting, let in-flight sub-queries finish
	// up to -drain-timeout, then close whatever is left.
	log.Printf("gisd: draining (up to %s)", *drainTimeout)
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("gisd: shutdown: %v", err)
	}
	log.Printf("gisd: bye")
}

// loadTable parses one -table definition and loads its CSV data.
func loadTable(store *relstore.Store, def string) error {
	eq := strings.IndexByte(def, '=')
	if eq < 0 {
		return fmt.Errorf("bad -table %q: missing '='", def)
	}
	name := def[:eq]
	rest := def[eq+1:]
	colon := strings.IndexByte(rest, ':')
	if colon < 0 {
		return fmt.Errorf("bad -table %q: missing column spec", def)
	}
	path := rest[:colon]
	var cols []types.Column
	for _, spec := range strings.Split(rest[colon+1:], ",") {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad column spec %q (want name:type)", spec)
		}
		kind, ok := types.KindFromName(parts[1])
		if !ok {
			return fmt.Errorf("unknown type %q in column spec %q", parts[1], spec)
		}
		cols = append(cols, types.Column{Name: parts[0], Type: kind})
	}
	schema := &types.Schema{Columns: cols}
	if err := store.CreateTable(name, schema, 0); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	var rows []types.Row
	recNo := 0
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		recNo++
		if len(rec) != len(cols) {
			return fmt.Errorf("%s record %d: %d fields, want %d", path, recNo, len(rec), len(cols))
		}
		row := make(types.Row, len(cols))
		for i, field := range rec {
			if field == "" {
				row[i] = types.Null
				continue
			}
			v, err := types.NewString(field).Coerce(cols[i].Type)
			if err != nil {
				return fmt.Errorf("%s record %d column %s: %w", path, recNo, cols[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if _, err := store.Insert(context.Background(), name, rows); err != nil {
		return err
	}
	log.Printf("gisd: loaded %s (%d rows) from %s", name, len(rows), path)
	return nil
}
